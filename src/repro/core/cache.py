"""LandlordCache — Algorithm 1 of the paper with full byte accounting.

Given a cached image collection ``I`` and a request specification ``s``:

1. if some ``i ∈ I`` has ``s ⊆ i``: **hit**, return ``i``;
2. else for ``j ∈ I`` with ``d_j(s, j) < α`` (sorted by distance): if ``s``
   and ``j`` do not conflict, **merge** — replace ``j`` with ``merge(s, j)``
   and return it (the merged image is rewritten in full, the dominant I/O
   cost in the paper's measurements);
3. else **insert** a new image built exactly from ``s``.

An LRU **eviction** loop keeps total cached bytes within ``capacity``; the
image serving the current request is pinned and never evicted while being
returned (a worker holds it), so a single oversized image may transiently
exceed capacity until the next request.

Performance note (this is the hot loop of every experiment): package sets
are interned into bit indices, and each cached image carries its set as a
Python big-int bitmask.  Subset tests (``s & i == s``) and Jaccard
intersections (``(s & j).bit_count()``) then run at C speed over ~1.2 KB
ints instead of hashing thousands of strings per candidate.  On top of
that, the three inner scans of the algorithm (hit scan, merge-candidate
scan, eviction-victim search) are pluggable **decision engines**
(:mod:`repro.core.engine`): the default ``engine="vectorized"`` resolves
them from an incrementally maintained ``uint64`` bit matrix with batched
NumPy subset tests, popcount Jaccard, and lazy-deletion eviction heaps;
``engine="naive"`` keeps the per-image Python loops as the reference.
The two are bit-identical (same decisions, stats, events, snapshots),
enforced by ``tests/core/test_engine_differential.py``, and the speedup
is recorded in ``BENCH_cache.json`` by ``benchmarks/test_cache_kernel.py``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.core.engine import ENGINES, make_engine
from repro.core.events import CacheEvent, EventKind
from repro.core.minhash import MinHashLSH, MinHashSignature
from repro.core.spec import ImageSpec
from repro.obs.trace import RequestTrace, TracedCandidate, TracedEviction
from repro.packages.conflicts import ConflictPolicy, NoConflicts

__all__ = [
    "CachedImage", "CacheStats", "CacheDecision", "LandlordCache", "ENGINES",
]

HIT_SELECTION = ("smallest", "mru", "first")
CANDIDATE_ORDER = ("distance", "insertion", "random")
EVICTION = ("lru", "fifo", "size")


def _resolve_scratch_mb(scratch_mb) -> float:
    """Validate the kernel scratch budget (MiB), honoring the environment.

    ``None`` falls back to ``REPRO_SCRATCH_MB`` and then to the 32 MiB
    default.  The budget only sizes batched-kernel temporaries — results
    are bit-identical at any budget via chunking — but a sub-MiB budget
    would shred every kernel into per-row slivers, so 1 MiB is the floor.
    """
    if scratch_mb is None:
        env = os.environ.get("REPRO_SCRATCH_MB")
        if env is None:
            return 32.0
        try:
            scratch_mb = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_SCRATCH_MB must be a number, got {env!r}"
            ) from None
    try:
        scratch_mb = float(scratch_mb)
    except (TypeError, ValueError):
        raise ValueError(
            f"scratch_mb must be a number, got {scratch_mb!r}"
        ) from None
    if not math.isfinite(scratch_mb) or scratch_mb < 1.0:
        raise ValueError(f"scratch_mb must be >= 1 (MiB), got {scratch_mb}")
    return scratch_mb


class _Universe:
    """Interns package ids to bit indices and tracks per-index sizes."""

    def __init__(self, package_size: Callable[[str], int]):
        self._package_size = package_size
        self._index: Dict[str, int] = {}
        self._ids: List[str] = []
        self._sizes = np.zeros(1024, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._ids)

    def index_of(self, package_id: str) -> int:
        idx = self._index.get(package_id)
        if idx is None:
            idx = len(self._ids)
            self._index[package_id] = idx
            self._ids.append(package_id)
            if idx >= self._sizes.size:
                grown = np.zeros(self._sizes.size * 2, dtype=np.int64)
                grown[: self._sizes.size] = self._sizes
                self._sizes = grown
            size = int(self._package_size(package_id))
            if size < 0:
                raise ValueError(f"negative size for package {package_id!r}")
            self._sizes[idx] = size
        return idx

    def mask_of(self, packages: Iterable[str]) -> Tuple[int, np.ndarray]:
        """Return (bitmask, sorted index array) for a package set.

        The bit buffer is built with vectorised scatter + ``np.packbits``;
        tiny sets stay on a plain loop, which beats numpy's fixed call
        overhead below a few dozen elements.
        """
        indices = sorted(self.index_of(p) for p in packages)
        arr = np.asarray(indices, dtype=np.int64)
        if not indices:
            return 0, arr
        if len(indices) < 32:
            buf = bytearray(indices[-1] // 8 + 1)
            for i in indices:
                buf[i >> 3] |= 1 << (i & 7)
            return int.from_bytes(bytes(buf), "little"), arr
        bits = np.zeros(indices[-1] + 1, dtype=np.uint8)
        bits[arr] = 1
        packed = np.packbits(bits, bitorder="little")
        return int.from_bytes(packed.tobytes(), "little"), arr

    def indices_of_mask(self, mask: int) -> np.ndarray:
        """Expand a bitmask back into its sorted index array."""
        if mask == 0:
            return np.zeros(0, dtype=np.int64)
        raw = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
        return np.flatnonzero(bits).astype(np.int64)

    def bytes_of_indices(self, indices: np.ndarray) -> int:
        return int(self._sizes[indices].sum())

    def ids_of_indices(self, indices: np.ndarray) -> FrozenSet[str]:
        return frozenset(self._ids[int(i)] for i in indices)

    @property
    def sizes(self) -> np.ndarray:
        return self._sizes


class CachedImage:
    """One container image resident in the cache."""

    __slots__ = (
        "id",
        "mask",
        "indices",
        "size",
        "created_at",
        "last_used",
        "last_request",
        "merge_count",
        "signature",
        "_universe",
    )

    def __init__(
        self,
        image_id: str,
        mask: int,
        indices: np.ndarray,
        size: int,
        created_at: int,
        universe: _Universe,
        signature: Optional[MinHashSignature] = None,
    ):
        self.id = image_id
        self.mask = mask
        self.indices = indices
        self.size = size
        self.created_at = created_at
        self.last_used = created_at
        self.last_request = 0
        self.merge_count = 0
        self.signature = signature
        self._universe = universe

    @property
    def package_count(self) -> int:
        return int(self.indices.size)

    @property
    def packages(self) -> FrozenSet[str]:
        """The image's package set as ids (materialised on demand)."""
        return self._universe.ids_of_indices(self.indices)

    def spec(self) -> ImageSpec:
        """The image contents as an :class:`ImageSpec`."""
        return ImageSpec(self.packages, label=self.id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CachedImage({self.id}, {self.package_count} pkgs, "
            f"{self.size} B, merges={self.merge_count})"
        )


@dataclass
class CacheStats:
    """Cumulative counters over a cache's lifetime.

    ``requested_bytes`` is the paper's "Requested Writes" (what jobs asked
    for); ``bytes_written`` is "Actual Writes" (inserts + merge rewrites);
    ``used_bytes`` accumulates the size of the image each request actually
    ran with, giving bytes-weighted container efficiency.

    ``deletes`` is the total eviction count;
    ``evictions_capacity``/``evictions_idle`` break it down by cause
    (capacity pressure vs. ``evict_idle`` aging) and always sum to it for
    histories recorded since the breakdown existed.
    """

    requests: int = 0
    hits: int = 0
    merges: int = 0
    inserts: int = 0
    deletes: int = 0
    splits: int = 0
    adoptions: int = 0  # images imported from elsewhere (federation pulls)
    requested_bytes: int = 0
    bytes_written: int = 0
    used_bytes: int = 0
    conflicts_skipped: int = 0
    candidates_examined: int = 0
    evictions_capacity: int = 0
    evictions_idle: int = 0

    def copy(self) -> "CacheStats":
        """One-shot value copy of the counters."""
        return CacheStats(**self.__dict__)

    @property
    def container_efficiency(self) -> float:
        """Requested bytes / used bytes (1.0 when no request was served)."""
        if self.used_bytes == 0:
            return 1.0
        return self.requested_bytes / self.used_bytes

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def write_amplification(self) -> float:
        """Actual writes / requested writes (the Fig. 4c overhead ratio)."""
        if self.requested_bytes == 0:
            return 0.0
        return self.bytes_written / self.requested_bytes


@dataclass
class CacheDecision:
    """Outcome of one request."""

    action: EventKind
    image: CachedImage
    requested_bytes: int
    distance: Optional[float] = None  # Jaccard distance to merge target
    bytes_added: int = 0  # new content materialised (0 on a hit)
    evicted: List[str] = field(default_factory=list)


class _CacheInstruments:
    """Pre-bound metric children for the cache's hot paths.

    Built once by :meth:`LandlordCache.enable_metrics`; every request
    then updates plain bound objects (no name lookups, no label-dict
    construction).  When no registry is attached the cache holds ``None``
    instead and each instrumentation site is a single ``is not None``
    check — the <2% disabled-path budget of
    ``benchmarks/test_obs_overhead.py``.

    Metric names follow the schema in DESIGN.md: ``landlord_*`` for the
    cache, with wall-clock histograms suffixed ``_seconds`` (excluded
    from deterministic snapshots).  Each ``landlord_request_seconds``
    observation carries an exemplar with the request index, so an
    OpenMetrics scrape links a slow bucket straight to
    ``repro-landlord explain <index>`` (the DecisionTracer narrative).
    """

    __slots__ = (
        "registry",
        "req_hit", "req_merge", "req_insert",
        "evict_capacity", "evict_idle",
        "requested_bytes", "bytes_written",
        "conflicts", "candidates",
        "cached_bytes", "unique_bytes", "images",
        "merge_distance",
        "request_s", "request_s_batched", "subset_scan_s",
        "candidate_probe_s", "merge_rewrite_s", "eviction_s",
        "clock", "trace_ids",
    )

    def __init__(self, registry, engine: str = "vectorized") -> None:
        from repro.obs.clock import default_clock
        from repro.obs.metrics import DEFAULT_TIME_BUCKETS, DISTANCE_BUCKETS

        self.registry = registry
        # Wall-clock source for exemplar timestamps; the request-index
        # map is set per window by the service daemon so request
        # exemplars additionally carry their distributed trace_id.
        self.clock = default_clock()
        self.trace_ids: Optional[Dict[int, str]] = None
        requests = registry.counter(
            "landlord_requests_total",
            "Requests served, by Algorithm 1 outcome.",
            labelnames=("action",),
        )
        self.req_hit = requests.labels(action="hit")
        self.req_merge = requests.labels(action="merge")
        self.req_insert = requests.labels(action="insert")
        evictions = registry.counter(
            "landlord_evictions_total",
            "Images evicted, by cause.",
            labelnames=("reason",),
        )
        self.evict_capacity = evictions.labels(reason="capacity")
        self.evict_idle = evictions.labels(reason="idle")
        self.requested_bytes = registry.counter(
            "landlord_requested_bytes_total",
            "Bytes jobs asked for (the paper's Requested Writes).",
        ).labels()
        self.bytes_written = registry.counter(
            "landlord_bytes_written_total",
            "Bytes of build/rewrite I/O (the paper's Actual Writes).",
        ).labels()
        self.conflicts = registry.counter(
            "landlord_conflicts_skipped_total",
            "Within-alpha merge candidates rejected by the conflict check.",
        ).labels()
        self.candidates = registry.counter(
            "landlord_candidates_examined_total",
            "Images examined by the merge-candidate scan.",
        ).labels()
        self.cached_bytes = registry.gauge(
            "landlord_cached_bytes",
            "Total bytes of all cached images.",
        ).labels()
        self.unique_bytes = registry.gauge(
            "landlord_unique_bytes",
            "Bytes of distinct packages present in the cache.",
        ).labels()
        self.images = registry.gauge(
            "landlord_images",
            "Number of cached images.",
        ).labels()
        self.merge_distance = registry.histogram(
            "landlord_merge_distance",
            "Jaccard distance of accepted merges.",
            buckets=DISTANCE_BUCKETS,
        ).labels()

        def timing(name: str, help: str):
            return registry.histogram(
                name, help, buckets=DEFAULT_TIME_BUCKETS
            ).labels()

        # Labelled by engine and batched-submission mode so the SLO
        # tracker and dashboards can tell the fast paths apart.
        request_family = registry.histogram(
            "landlord_request_seconds",
            "Wall-clock seconds to serve one request end to end.",
            buckets=DEFAULT_TIME_BUCKETS,
            labelnames=("engine", "batched"),
        )
        self.request_s = request_family.labels(engine=engine, batched="no")
        self.request_s_batched = request_family.labels(
            engine=engine, batched="yes"
        )
        self.subset_scan_s = timing(
            "landlord_subset_scan_seconds",
            "Wall-clock seconds in the superset (hit) scan.")
        self.candidate_probe_s = timing(
            "landlord_candidate_probe_seconds",
            "Wall-clock seconds in the merge-candidate scan / LSH probe.")
        self.merge_rewrite_s = timing(
            "landlord_merge_rewrite_seconds",
            "Wall-clock seconds in the merge rewrite (mask/index/LSH update).")
        self.eviction_s = timing(
            "landlord_eviction_seconds",
            "Wall-clock seconds in the capacity-eviction loop (when it ran).")

    def exemplar_for(self, request_index: int) -> tuple:
        """The exemplar label set for one request's latency observation:
        always the request index (the ``explain`` click-through), plus
        the distributed ``trace_id`` when the service daemon mapped this
        index to one (the waterfall click-through)."""
        exemplar = (("request", str(request_index)),)
        trace_ids = self.trace_ids
        if trace_ids is not None:
            trace_id = trace_ids.get(request_index)
            if trace_id is not None:
                exemplar += (("trace_id", trace_id),)
        return exemplar


class LandlordCache:
    """The online container-image cache of Algorithm 1.

    Args:
        capacity: cache capacity in bytes.
        alpha: maximal Jaccard distance for merge candidates, in [0, 1].
        package_size: size oracle mapping a package id to its byte size
            (typically ``repository.size_of``).
        conflict_policy: when merging is legal; defaults to
            :class:`~repro.packages.conflicts.NoConflicts` (the CVMFS case).
        hit_selection: which superset image serves a hit — ``"smallest"``
            (best container efficiency, default), ``"mru"``, or ``"first"``.
        candidate_order: merge-candidate ordering — ``"distance"`` (the
            paper's "selection can be sorted by d_j", default),
            ``"insertion"``, or ``"random"`` (ablations).
        eviction: ``"lru"`` (default), ``"fifo"``, or ``"size"`` (largest
            first).
        use_minhash: prefilter merge candidates with a MinHash/LSH index
            and verify exactly, instead of exact Jaccard against every
            cached image.
        minhash_perm / minhash_bands: signature width and LSH banding.
        record_events: keep a :class:`CacheEvent` log (needed for Fig. 5).
        rng: source of randomness for ``candidate_order="random"``.
        merge_write_mode: ``"full"`` (the paper's mechanism — a merged
            image is rewritten in its entirety) or ``"delta"`` (a
            hypothetical copy-on-write image format where a merge only
            writes the added content).  The ablation in DESIGN.md §5 uses
            this to separate Figure 4c's policy cost from its mechanism
            cost.
        metrics: optional :class:`repro.obs.MetricsRegistry` to record
            counters, gauges, and hot-path latency histograms into
            (equivalent to calling :meth:`enable_metrics` after
            construction).
        tracer: optional :class:`repro.obs.DecisionTracer` recording a
            structured per-request decision trace (equivalent to
            calling :meth:`enable_tracing`).  Tracing never perturbs
            decisions.
        slo: optional :class:`repro.obs.SloTracker` fed one observation
            per request for rolling-window telemetry (equivalent to
            calling :meth:`enable_slo`).  Like tracing, it only reads —
            decisions are bit-identical with or without it.
        engine: which decision engine resolves the hit scan, the
            merge-candidate scan, and the eviction-victim search —
            ``"vectorized"`` (batched NumPy kernels over a bit matrix,
            the default) or ``"naive"`` (per-image Python loops, the
            reference).  A pure performance knob: the engines are
            bit-identical, so it is *not* part of
            :meth:`policy_snapshot` and snapshots restore across
            engines.
        prefilter: let the vectorized engine narrow full merge scans to
            the exact count window (and probe its internal LSH) before
            popcounting — another pure performance knob; decisions stay
            bit-identical with it on or off (the default is on).  The
            naive engine ignores it.
        scratch_mb: budget in MiB for the vectorized engine's batched
            kernel temporaries (``--scratch-mb`` on the CLI).  ``None``
            reads ``REPRO_SCRATCH_MB`` and defaults to 32.  Kernels chunk
            to the budget, so any value >= 1 yields bit-identical
            results; smaller budgets just run more, smaller chunks.
    """

    def __init__(
        self,
        capacity: int,
        alpha: float,
        package_size: Callable[[str], int],
        conflict_policy: Optional[ConflictPolicy] = None,
        hit_selection: str = "smallest",
        candidate_order: str = "distance",
        eviction: str = "lru",
        use_minhash: bool = False,
        minhash_perm: int = 128,
        minhash_bands: int = 32,
        minhash_seed: int = 1,
        record_events: bool = False,
        rng: Optional[np.random.Generator] = None,
        merge_write_mode: str = "full",
        metrics=None,
        tracer=None,
        slo=None,
        engine: str = "vectorized",
        prefilter: bool = True,
        scratch_mb: Optional[float] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if hit_selection not in HIT_SELECTION:
            raise ValueError(f"hit_selection must be one of {HIT_SELECTION}")
        if candidate_order not in CANDIDATE_ORDER:
            raise ValueError(f"candidate_order must be one of {CANDIDATE_ORDER}")
        if eviction not in EVICTION:
            raise ValueError(f"eviction must be one of {EVICTION}")
        if merge_write_mode not in ("full", "delta"):
            raise ValueError(
                f"merge_write_mode must be 'full' or 'delta', "
                f"got {merge_write_mode!r}"
            )
        self.merge_write_mode = merge_write_mode
        self.capacity = capacity
        self.alpha = alpha
        self.conflict_policy = conflict_policy or NoConflicts()
        self.hit_selection = hit_selection
        self.candidate_order = candidate_order
        self.eviction = eviction
        self.use_minhash = use_minhash
        self._minhash_perm = minhash_perm
        self._minhash_bands = minhash_bands
        self._minhash_seed = minhash_seed
        self._lsh = (
            MinHashLSH(minhash_perm, minhash_bands) if use_minhash else None
        )
        self.record_events = record_events
        self._rng = rng or np.random.default_rng(0)

        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.engine = engine
        # Read by VectorizedEngine.bind(); a pure performance knob like
        # ``engine`` itself (decisions are bit-identical either way), so
        # not part of policy_snapshot().
        self.engine_prefilter = bool(prefilter)
        # Batched-kernel temporary budget in MiB (also read at bind time;
        # chunking keeps results bit-identical at any budget).
        self.engine_scratch_mb = _resolve_scratch_mb(scratch_mb)
        # The governor of the most recent submit_batch(batch_size="auto")
        # call, for /statusz and the dashboard (None until one runs).
        self.last_batch_governor = None
        self._in_batch = False
        self._universe = _Universe(package_size)
        self._images: Dict[str, CachedImage] = {}
        self._clock = 0
        self._next_image = 0
        self._cached_bytes = 0
        self._refcounts = np.zeros(1024, dtype=np.int32)
        self._unique_bytes = 0
        self._spec_memo: Dict[FrozenSet[str], Tuple[int, np.ndarray, int]] = {}
        self.stats = CacheStats()
        self.events: List[CacheEvent] = []
        self._ins: Optional[_CacheInstruments] = None
        self._tracer = None
        self._slo = None
        self._lock = None
        self._pending_evictions: List[TracedEviction] = []
        # The engine binds last: it reads the validated policy knobs and
        # mirrors _images (empty here; restore() replays adds into it).
        self._engine = make_engine(engine)
        self._engine.bind(self)
        if metrics is not None:
            self.enable_metrics(metrics)
        if tracer is not None:
            self.enable_tracing(tracer)
        if slo is not None:
            self.enable_slo(slo)

    # -- observability -----------------------------------------------------

    @property
    def metrics(self):
        """The attached metrics registry, or ``None`` when disabled."""
        return self._ins.registry if self._ins is not None else None

    @property
    def tracer(self):
        """The attached decision tracer, or ``None`` when disabled."""
        return self._tracer

    def enable_metrics(self, registry) -> None:
        """Record counters/gauges/latency histograms into ``registry``.

        Safe to call on a live cache (e.g. after a journal replay, so
        replayed history is not double-counted); the gauges are synced
        immediately, the counters advance from here on.
        """
        self._ins = _CacheInstruments(registry, self.engine)
        self._update_gauges()

    def enable_tracing(self, tracer) -> None:
        """Record per-request decision traces into ``tracer``."""
        self._tracer = tracer

    def set_exemplar_traces(self, trace_ids) -> None:
        """Map request indices to distributed trace ids for the next
        window's latency exemplars.

        The service daemon calls this before :meth:`submit_batch` with
        ``{request_index: trace_id}`` so the slow-bucket exemplars on
        ``landlord_request_seconds`` carry the trace id of the request
        that landed there, and clears it (``None``) afterwards.  A no-op
        when metrics are disabled.
        """
        if self._ins is not None:
            self._ins.trace_ids = trace_ids

    @property
    def slo(self):
        """The attached SLO tracker, or ``None`` when disabled."""
        return self._slo

    def enable_slo(self, tracker) -> None:
        """Feed rolling-window telemetry into ``tracker``.

        One :meth:`repro.obs.SloTracker.on_request` call per request,
        behind the same ``is not None`` guard as the other instruments;
        the tracker is configured with this cache's capacity and α so
        windowed occupancy is meaningful.
        """
        tracker.configure(self.capacity, self.alpha)
        self._slo = tracker

    @property
    def lock(self):
        """The attached mutation lock, or ``None`` when disabled."""
        return self._lock

    def enable_lock(self, lock) -> None:
        """Serialise mutating entry points under ``lock``.

        ``lock`` must be *re-entrant* (a :class:`threading.RLock`):
        :meth:`submit_batch` holds it across a window while
        :meth:`request` re-acquires per request.  Attach the same lock
        to an :class:`~repro.obs.ObsServer` (its ``lock=`` parameter)
        and scrapes render a consistent view of the registry, SLO
        window, and cache gauges — no ``/statusz`` mid-mutation tears.
        Guard-gated like every other instrument: when no lock is
        attached each entry point pays one ``is not None`` check, so
        the disabled-path overhead bound in ``BENCH_obs.json`` holds.
        """
        self._lock = lock

    def _update_gauges(self) -> None:
        ins = self._ins
        if ins is not None:
            ins.cached_bytes.set(self._cached_bytes)
            ins.unique_bytes.set(self._unique_bytes)
            ins.images.set(len(self._images))

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._images)

    @property
    def images(self) -> List[CachedImage]:
        """Snapshot of cached images (unspecified order)."""
        return list(self._images.values())

    @property
    def cached_bytes(self) -> int:
        """Total bytes of all cached images (with cross-image duplication)."""
        return self._cached_bytes

    @property
    def unique_bytes(self) -> int:
        """Bytes of distinct packages present in at least one cached image."""
        return self._unique_bytes

    @property
    def cache_efficiency(self) -> float:
        """Unique bytes / total bytes (the paper's cache-efficiency metric)."""
        if self._cached_bytes == 0:
            return 1.0
        return self._unique_bytes / self._cached_bytes

    def clear(self) -> None:
        """Drop every cached image without touching the statistics.

        Used by baseline policies (build-per-job) and tests; regular
        operation relies on eviction instead.
        """
        lock = self._lock
        if lock is None:
            return self._clear()
        with lock:
            return self._clear()

    def _clear(self) -> None:
        for image in list(self._images.values()):
            self._drop_image(image)
        self._update_gauges()

    def evict_idle(self, max_idle_requests: int) -> List[str]:
        """Administrative maintenance: drop images unused for a while.

        The paper's bloat argument relies on eventual eviction ("without
        regular use, the bloated image will eventually be evicted from the
        cache"); under capacity pressure LRU provides that, but an
        under-full cache can hold stale images forever.  This sweeps out
        every image that no request has used within the last
        ``max_idle_requests`` requests (``stats.requests`` is the unit:
        federation adoptions and splits advance the internal LRU clock
        but do *not* age images, so the idle window is measured in actual
        job requests as documented).  Returns the evicted ids (counted as
        deletes).

        Both the emitted :class:`CacheEvent` and the tracer callback
        carry ``stats.requests - 1`` — the 0-based index of the last
        completed request, i.e. the request the images idled out *after*
        (an idle eviction requires at least one request, so the index is
        never negative).
        """
        if max_idle_requests < 0:
            raise ValueError("max_idle_requests must be non-negative")
        lock = self._lock
        if lock is None:
            return self._evict_idle(max_idle_requests)
        with lock:
            return self._evict_idle(max_idle_requests)

    def _evict_idle(self, max_idle_requests: int) -> List[str]:
        horizon = self.stats.requests - max_idle_requests
        request_index = self.stats.requests - 1
        evicted = []
        for image in list(self._images.values()):
            if image.last_request < horizon:
                self._drop_image(image)
                self.stats.deletes += 1
                self.stats.evictions_idle += 1
                evicted.append(image.id)
                self._emit(
                    CacheEvent(
                        EventKind.DELETE, request_index,
                        image.id, image.size, reason="idle",
                    )
                )
                if self._ins is not None:
                    self._ins.evict_idle.inc()
                if self._tracer is not None:
                    self._tracer.on_idle_eviction(
                        request_index, image.id, image.size
                    )
        if evicted:
            self._update_gauges()
        return evicted

    def peek(self, spec: "ImageSpec | AbstractSet[str]") -> Optional[CachedImage]:
        """Non-mutating hit check: the image that *would* serve ``spec``.

        Touches nothing — no statistics, no LRU update, no insertion.
        Federation layers use this to decide whether to consult a remote
        registry before letting :meth:`request` build locally.
        """
        packages = spec.packages if isinstance(spec, ImageSpec) else frozenset(spec)
        mask, _indices, _size = self._intern(packages)
        return self._find_hit(mask)

    def adopt(self, packages: "AbstractSet[str]") -> CachedImage:
        """Import an externally built image into the cache.

        The image's contents were produced elsewhere (pulled from a
        registry, staged by an administrator), so no build I/O is charged
        here — the transport layer accounts its own transfer.  The adopted
        image participates in hits, merges, and eviction exactly like a
        locally built one.

        Capacity evictions an adoption forces are reported to an attached
        tracer via
        :meth:`~repro.obs.trace.DecisionTracer.on_adoption_evictions`,
        attached to the last completed request's trace (like
        ``evict_idle`` victims); the emitted DELETE events themselves use
        the next request's index, as for in-request capacity evictions.
        """
        lock = self._lock
        if lock is None:
            return self._adopt(packages)
        with lock:
            return self._adopt(packages)

    def _adopt(self, packages: "AbstractSet[str]") -> CachedImage:
        key = frozenset(packages)
        if not key:
            raise ValueError("cannot adopt an empty image")
        mask, indices, size = self._intern(key)
        signature = self._signature_of(key)
        self._clock += 1
        image = self._new_image(mask, indices.copy(), size, signature)
        image.last_used = self._clock
        self._engine.on_touch(image)
        self.stats.adoptions += 1
        self._evict_to_capacity(image.id, self.stats.requests)
        if self._pending_evictions:
            # _evict_to_capacity queued these for the tracer; an adoption
            # has no request of its own, so hand them over here instead
            # of silently discarding them.
            if self._tracer is not None:
                self._tracer.on_adoption_evictions(
                    self.stats.requests - 1, tuple(self._pending_evictions)
                )
            self._pending_evictions.clear()
        self._update_gauges()
        return image

    # -- persistence support -------------------------------------------------

    def policy_snapshot(self) -> dict:
        """The full set of policy knobs this cache was configured with.

        Everything that changes *behaviour* without changing the byte
        gauges: eviction, hit selection, candidate order, merge write
        mode, MinHash configuration, and the conflict-policy identity
        (via :meth:`~repro.packages.conflicts.ConflictPolicy.describe`).
        Recorded in every :meth:`snapshot` and validated by
        :meth:`restore`, so a persisted cache can never silently resume
        under different semantics than the state was built under.
        """
        return {
            "eviction": self.eviction,
            "hit_selection": self.hit_selection,
            "candidate_order": self.candidate_order,
            "merge_write_mode": self.merge_write_mode,
            "use_minhash": self.use_minhash,
            "minhash_perm": self._minhash_perm,
            "minhash_bands": self._minhash_bands,
            "minhash_seed": self._minhash_seed,
            "conflict_policy": self.conflict_policy.describe(),
        }

    def snapshot(self) -> dict:
        """Serialisable view of the full cache state.

        Package sets are materialised to sorted id lists; policy knobs
        are recorded via :meth:`policy_snapshot`; when
        ``candidate_order="random"`` the RNG state rides along so a
        restored cache draws the same shuffles the original would have.
        Pair with :meth:`restore` (see :mod:`repro.core.persistence` for
        the file-level API the job-wrapper CLI uses).
        """
        state = {
            "capacity": self.capacity,
            "alpha": self.alpha,
            "clock": self._clock,
            "next_image": self._next_image,
            "policy": self.policy_snapshot(),
            "stats": dict(self.stats.__dict__),
            "images": [
                {
                    "id": img.id,
                    "packages": sorted(img.packages),
                    "created_at": img.created_at,
                    "last_used": img.last_used,
                    "last_request": img.last_request,
                    "merge_count": img.merge_count,
                }
                for img in self._images.values()
            ],
        }
        if self.candidate_order == "random":
            state["rng_state"] = self._rng.bit_generator.state
        return state

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` into this (empty) cache.

        The cache must be freshly constructed — restoring over live images
        would corrupt the byte gauges.  Configuration (capacity, alpha,
        and every :meth:`policy_snapshot` knob) must match the snapshot;
        mismatches raise :class:`ValueError` rather than silently running
        with different semantics than the state was built under.
        """
        if self._images or self.stats.requests:
            raise ValueError("restore requires a fresh cache")
        if state["capacity"] != self.capacity or state["alpha"] != self.alpha:
            raise ValueError(
                "snapshot was taken with capacity="
                f"{state['capacity']} alpha={state['alpha']}, cache has "
                f"capacity={self.capacity} alpha={self.alpha}"
            )
        recorded = state.get("policy")
        if recorded is None:
            raise ValueError(
                "snapshot records no policy knobs (pre-v2 format) — "
                "migrate it via repro.core.persistence.load_state(..., "
                "migrate_v1=True)"
            )
        mine = self.policy_snapshot()
        mismatched = [
            knob
            for knob in sorted(set(mine) | set(recorded))
            if recorded.get(knob) != mine.get(knob)
        ]
        if mismatched:
            detail = ", ".join(
                f"{knob}: snapshot={recorded.get(knob)!r} "
                f"cache={mine.get(knob)!r}"
                for knob in mismatched
            )
            raise ValueError(f"snapshot policy mismatch — {detail}")
        rng_state = state.get("rng_state")
        if rng_state is not None:
            mine_bg = type(self._rng.bit_generator).__name__
            if rng_state.get("bit_generator") != mine_bg:
                raise ValueError(
                    f"snapshot RNG is {rng_state.get('bit_generator')!r}, "
                    f"cache uses {mine_bg!r}"
                )
            self._rng.bit_generator.state = rng_state
        for field_name, value in state["stats"].items():
            if not hasattr(self.stats, field_name):
                raise ValueError(f"unknown stats field {field_name!r}")
            setattr(self.stats, field_name, value)
        self._clock = int(state["clock"])
        self._next_image = int(state["next_image"])
        for record in state["images"]:
            packages = frozenset(record["packages"])
            mask, indices, size = self._intern(packages)
            image = CachedImage(
                record["id"], mask, indices.copy(), size,
                int(record["created_at"]), self._universe,
                self._signature_of(packages),
            )
            image.last_used = int(record["last_used"])
            # v1 snapshots predate last_request; clamp the clock-based
            # last_used to the request counter as the closest honest value.
            image.last_request = int(
                record.get(
                    "last_request",
                    min(int(record["last_used"]),
                        int(state["stats"]["requests"])),
                )
            )
            image.merge_count = int(record["merge_count"])
            if image.id in self._images:
                raise ValueError(f"duplicate image id in snapshot: {image.id}")
            self._images[image.id] = image
            self._cached_bytes += size
            self._account_add(indices)
            if self._lsh is not None and image.signature is not None:
                self._lsh.insert(image.id, image.signature)
            self._engine.on_add(image)
        self._update_gauges()

    def split(
        self,
        image_id: str,
        parts: "List[AbstractSet[str]]",
    ) -> List[CachedImage]:
        """Split a cached image into smaller images (the abstract's fourth
        operation, for de-bloating without waiting on eviction).

        Each part must be a non-empty subset of the image's contents;
        packages not covered by any part are dropped from the cache.  The
        original image is removed and each part is written out as a fresh
        image (writes are charged — splitting is I/O, like merging).
        Returns the new images, most-recently-used last.

        Raises :class:`KeyError` for unknown images and
        :class:`ValueError` for empty/out-of-image parts.
        """
        lock = self._lock
        if lock is None:
            return self._split(image_id, parts)
        with lock:
            return self._split(image_id, parts)

    def _split(
        self,
        image_id: str,
        parts: "List[AbstractSet[str]]",
    ) -> List[CachedImage]:
        image = self._images.get(image_id)
        if image is None:
            raise KeyError(f"unknown image: {image_id!r}")
        if not parts:
            raise ValueError("split needs at least one part")
        interned = []
        for part in parts:
            packages = frozenset(part)
            if not packages:
                raise ValueError("split parts must be non-empty")
            mask, indices, size = self._intern(packages)
            if mask & image.mask != mask:
                raise ValueError(
                    "split part is not a subset of the image contents"
                )
            interned.append((mask, indices, size))
        self._drop_image(image)
        new_images = []
        for mask, indices, size in interned:
            self._clock += 1
            part_image = self._new_image(
                mask, indices.copy(), size,
                self._signature_of(self._universe.ids_of_indices(indices)),
            )
            part_image.last_used = self._clock
            self._engine.on_touch(part_image)
            self.stats.bytes_written += size
            new_images.append(part_image)
        self.stats.splits += 1
        self._update_gauges()
        return new_images

    # -- internals ---------------------------------------------------------------

    def _emit(self, event: CacheEvent) -> None:
        if self.record_events:
            self.events.append(event)

    # Incidental-memory bound for _spec_memo; class attribute so tests can
    # shrink it without replaying 64Ki distinct specs.
    _SPEC_MEMO_LIMIT = 65536

    def _intern(self, packages: AbstractSet[str]) -> Tuple[int, np.ndarray, int]:
        key = packages if isinstance(packages, frozenset) else frozenset(packages)
        memo = self._spec_memo.get(key)
        if memo is not None:
            return memo
        mask, indices = self._universe.mask_of(key)
        size = self._universe.bytes_of_indices(indices)
        if len(self._spec_memo) >= self._SPEC_MEMO_LIMIT:
            # Drop the oldest half rather than wiping everything: recently
            # repeated specs stay memoized across the threshold.
            for stale in list(self._spec_memo)[: self._SPEC_MEMO_LIMIT // 2]:
                del self._spec_memo[stale]
        self._spec_memo[key] = (mask, indices, size)
        return mask, indices, size

    def _grow_refcounts(self, needed: int) -> None:
        if needed <= self._refcounts.size:
            return
        capacity = self._refcounts.size
        while capacity < needed:
            capacity *= 2
        grown = np.zeros(capacity, dtype=np.int32)
        grown[: self._refcounts.size] = self._refcounts
        self._refcounts = grown

    def _account_add(self, indices: np.ndarray) -> None:
        if indices.size == 0:
            return
        self._grow_refcounts(int(indices[-1]) + 1)
        prev = self._refcounts[indices]
        self._refcounts[indices] = prev + 1
        fresh = indices[prev == 0]
        self._unique_bytes += self._universe.bytes_of_indices(fresh)

    def _account_remove(self, indices: np.ndarray) -> None:
        if indices.size == 0:
            return
        prev = self._refcounts[indices]
        self._refcounts[indices] = prev - 1
        gone = indices[prev == 1]
        self._unique_bytes -= self._universe.bytes_of_indices(gone)

    def _new_image(
        self,
        mask: int,
        indices: np.ndarray,
        size: int,
        signature: Optional[MinHashSignature],
    ) -> CachedImage:
        image_id = f"img-{self._next_image:06d}"
        self._next_image += 1
        image = CachedImage(
            image_id, mask, indices, size, self._clock, self._universe, signature
        )
        image.last_request = self.stats.requests
        self._images[image_id] = image
        self._cached_bytes += size
        self._account_add(indices)
        if self._lsh is not None and signature is not None:
            self._lsh.insert(image_id, signature)
        self._engine.on_add(image)
        return image

    def _drop_image(self, image: CachedImage) -> None:
        del self._images[image.id]
        self._cached_bytes -= image.size
        self._account_remove(image.indices)
        if self._lsh is not None:
            self._lsh.remove(image.id)
        self._engine.on_remove(image)

    def _eviction_victim(self, pinned_id: str) -> Optional[CachedImage]:
        return self._engine.eviction_victim(pinned_id)

    def _evict_to_capacity(self, pinned_id: str, request_index: int) -> List[str]:
        evicted: List[str] = []
        if self._cached_bytes <= self.capacity:
            return evicted
        ins = self._ins
        tracer = self._tracer
        start = perf_counter() if ins is not None else 0.0
        while self._cached_bytes > self.capacity:
            victim = self._eviction_victim(pinned_id)
            if victim is None:
                break  # only the pinned image remains; allow transient overflow
            self._drop_image(victim)
            self.stats.deletes += 1
            self.stats.evictions_capacity += 1
            evicted.append(victim.id)
            self._emit(
                CacheEvent(
                    EventKind.DELETE,
                    request_index,
                    victim.id,
                    victim.size,
                    reason="capacity",
                )
            )
            if ins is not None:
                ins.evict_capacity.inc()
            if tracer is not None:
                self._pending_evictions.append(
                    TracedEviction(victim.id, victim.size, "capacity")
                )
        if ins is not None:
            ins.eviction_s.observe(perf_counter() - start)
        return evicted

    def _signature_of(self, packages: AbstractSet[str]) -> Optional[MinHashSignature]:
        if not self.use_minhash:
            return None
        return MinHashSignature.of(
            packages, num_perm=self._minhash_perm, seed=self._minhash_seed
        )

    def _merge_candidates(
        self,
        mask: int,
        n_request: int,
        signature: Optional[MinHashSignature],
        indices: Optional[np.ndarray] = None,
    ) -> List[Tuple[float, CachedImage]]:
        """All cached images with exact d_j < alpha, with their distances."""
        if self._lsh is not None and signature is not None:
            # Materialise the LSH pool once so both engines see the same
            # ids in the same (set-iteration) order — candidate ordering
            # under "insertion"/"random" depends on it.
            pool_ids: Optional[List[str]] = [
                key
                for key in self._lsh.query(signature)
                if key in self._images
            ]
        else:
            pool_ids = None
        out, examined = self._engine.scan_candidates(
            mask, n_request, self.alpha, pool_ids, indices=indices
        )
        self.stats.candidates_examined += examined
        return out

    # -- the algorithm -----------------------------------------------------------

    def request(self, spec: "ImageSpec | AbstractSet[str]") -> CacheDecision:
        """Serve one job request; returns the decision with the image used."""
        lock = self._lock
        if lock is None:
            return self._request(spec)
        with lock:
            return self._request(spec)

    def _request(self, spec: "ImageSpec | AbstractSet[str]") -> CacheDecision:
        packages = spec.packages if isinstance(spec, ImageSpec) else frozenset(spec)
        mask, indices, requested = self._intern(packages)
        n_request = int(indices.size)
        request_index = self.stats.requests
        self.stats.requests += 1
        self.stats.requested_bytes += requested
        self._clock += 1
        ins = self._ins
        tracer = self._tracer
        slo = self._slo
        images_scanned = len(self._images)
        measured = ins is not None or slo is not None
        t_request = perf_counter() if measured else 0.0
        request_timer = None
        if ins is not None:
            request_timer = (
                ins.request_s_batched if self._in_batch else ins.request_s
            )

        # Step 1: reuse an existing superset image.
        if ins is not None:
            t0 = perf_counter()
            hit = self._find_hit(mask)
            ins.subset_scan_s.observe(perf_counter() - t0)
        else:
            hit = self._find_hit(mask)
        if hit is not None:
            hit.last_used = self._clock
            hit.last_request = self.stats.requests
            self._engine.on_touch(hit)
            self.stats.hits += 1
            self.stats.used_bytes += hit.size
            self._emit(
                CacheEvent(
                    EventKind.HIT, request_index, hit.id, hit.size,
                    requested_bytes=requested,
                )
            )
            if ins is not None:
                ins.req_hit.inc()
                ins.requested_bytes.inc(requested)
                request_timer.observe(
                    perf_counter() - t_request,
                    ins.exemplar_for(request_index),
                    ins.clock.now(),
                )
            if slo is not None:
                slo.on_request(
                    "hit", requested, 0, hit.size, 0,
                    perf_counter() - t_request,
                    self._cached_bytes, self._unique_bytes,
                    len(self._images),
                )
            if tracer is not None:
                tracer.on_request(RequestTrace(
                    request_index=request_index,
                    n_packages=n_request,
                    requested_bytes=requested,
                    alpha=self.alpha,
                    images_scanned=images_scanned,
                    action="hit",
                    image_id=hit.id,
                    image_bytes=hit.size,
                ))
            return CacheDecision(EventKind.HIT, hit, requested)

        signature = self._signature_of(packages)

        # Step 2: merge into a near image.
        examined_before = self.stats.candidates_examined
        if ins is not None:
            t0 = perf_counter()
            candidates = self._merge_candidates(
                mask, n_request, signature, indices
            )
            ins.candidate_probe_s.observe(perf_counter() - t0)
        else:
            candidates = self._merge_candidates(
                mask, n_request, signature, indices
            )
        examined = self.stats.candidates_examined - examined_before
        if ins is not None:
            ins.candidates.inc(examined)
        conflicts = 0
        traced: Optional[List[TracedCandidate]] = (
            [] if tracer is not None else None
        )
        if candidates:
            if self.candidate_order == "distance":
                candidates.sort(key=lambda pair: (pair[0], pair[1].id))
            elif self.candidate_order == "random":
                self._rng.shuffle(candidates)
            for pos, (distance, target) in enumerate(candidates):
                if self.conflict_policy.conflicts(packages, target.packages):
                    self.stats.conflicts_skipped += 1
                    conflicts += 1
                    if ins is not None:
                        ins.conflicts.inc()
                    if traced is not None:
                        traced.append(TracedCandidate(
                            target.id, distance, target.size, "conflict"
                        ))
                    continue
                if traced is not None:
                    # Record the chosen candidate's size before the merge
                    # rewrite mutates it, and the never-reached rest.
                    traced.append(TracedCandidate(
                        target.id, distance, target.size, "merged"
                    ))
                    for rest_distance, rest in candidates[pos + 1:]:
                        traced.append(TracedCandidate(
                            rest.id, rest_distance, rest.size, "unused"
                        ))
                decision = self._do_merge(
                    target, mask, indices, requested, distance,
                    signature, request_index, examined, conflicts,
                )
                if ins is not None:
                    ins.req_merge.inc()
                    ins.requested_bytes.inc(requested)
                    ins.merge_distance.observe(distance)
                    self._update_gauges()
                    request_timer.observe(
                        perf_counter() - t_request,
                        ins.exemplar_for(request_index),
                        ins.clock.now(),
                    )
                if slo is not None:
                    written = (
                        decision.image.size
                        if self.merge_write_mode == "full"
                        else decision.bytes_added
                    )
                    slo.on_request(
                        "merge", requested, written, decision.image.size,
                        len(decision.evicted),
                        perf_counter() - t_request,
                        self._cached_bytes, self._unique_bytes,
                        len(self._images),
                    )
                if tracer is not None:
                    evictions = tuple(self._pending_evictions)
                    self._pending_evictions.clear()
                    tracer.on_request(RequestTrace(
                        request_index=request_index,
                        n_packages=n_request,
                        requested_bytes=requested,
                        alpha=self.alpha,
                        images_scanned=images_scanned,
                        action="merge",
                        image_id=decision.image.id,
                        image_bytes=decision.image.size,
                        distance=distance,
                        bytes_added=decision.bytes_added,
                        candidates=tuple(traced or ()),
                        evictions=evictions,
                    ))
                return decision

        # Step 3: insert a fresh image.
        image = self._new_image(mask, indices, requested, signature)
        image.last_used = self._clock
        self._engine.on_touch(image)
        self.stats.inserts += 1
        self.stats.bytes_written += requested
        self.stats.used_bytes += requested
        self._emit(
            CacheEvent(
                EventKind.INSERT, request_index, image.id, image.size,
                bytes_written=requested, requested_bytes=requested,
                candidates_examined=examined, conflicts_skipped=conflicts,
            )
        )
        evicted = self._evict_to_capacity(image.id, request_index)
        if ins is not None:
            ins.req_insert.inc()
            ins.requested_bytes.inc(requested)
            ins.bytes_written.inc(requested)
            self._update_gauges()
            request_timer.observe(
                perf_counter() - t_request,
                ins.exemplar_for(request_index),
                ins.clock.now(),
            )
        if slo is not None:
            slo.on_request(
                "insert", requested, requested, image.size,
                len(evicted), perf_counter() - t_request,
                self._cached_bytes, self._unique_bytes,
                len(self._images),
            )
        if tracer is not None:
            evictions = tuple(self._pending_evictions)
            self._pending_evictions.clear()
            tracer.on_request(RequestTrace(
                request_index=request_index,
                n_packages=n_request,
                requested_bytes=requested,
                alpha=self.alpha,
                images_scanned=images_scanned,
                action="insert",
                image_id=image.id,
                image_bytes=image.size,
                bytes_added=requested,
                candidates=tuple(traced or ()),
                evictions=evictions,
            ))
        return CacheDecision(
            EventKind.INSERT, image, requested,
            bytes_added=requested, evicted=evicted,
        )

    def submit_batch(
        self,
        specs: Iterable["ImageSpec | AbstractSet[str]"],
        batch_size: "int | str" = 1024,
    ) -> List[CacheDecision]:
        """Serve a vector of independent requests through batched kernels.

        Semantically identical to ``[self.request(s) for s in specs]`` —
        same decisions, stats, events, and final state, enforced by the
        differential suite — but per window of ``batch_size`` requests
        the engine precomputes all hit predictions in grouped kernel
        invocations (:meth:`~repro.core.engine.VectorizedEngine
        .begin_batch`) and serves each request by repairing its
        prediction against the images dirtied since the window opened,
        amortizing per-request numpy dispatch overhead.  The naive
        engine's window hooks are no-ops, so this is safe (just not
        faster) under ``engine="naive"``.

        ``batch_size="auto"`` hands window sizing to an AIMD governor
        (:func:`repro.core.adaptive.batch_governor`): the window grows
        additively while the engine's observed per-window dirty rate
        stays low and shrinks multiplicatively when dirty-set repair
        dominates.  An explicit
        :class:`~repro.core.adaptive.AimdController` instance is also
        accepted for custom laws.  Window boundaries never affect
        decisions — every window replays through ``request()`` against
        live state — so adaptive sizing preserves bit-identity even
        though the window sequence is engine-dependent.
        """
        governor = self._batch_governor_for(batch_size)
        lock = self._lock
        if lock is None:
            return self._submit_batch(specs, batch_size, governor)
        with lock:
            return self._submit_batch(specs, batch_size, governor)

    def _batch_governor_for(self, batch_size):
        """Resolve/validate ``batch_size`` into an AIMD governor or None."""
        # Imported here: repro.core.adaptive imports this module.
        from repro.core.adaptive import AimdController, batch_governor

        if isinstance(batch_size, AimdController):
            return batch_size
        if isinstance(batch_size, str):
            if batch_size != "auto":
                raise ValueError(
                    f"batch_size must be a positive int, 'auto', or an "
                    f"AimdController, got {batch_size!r}"
                )
            return batch_governor()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return None

    def _submit_batch(
        self,
        specs: Iterable["ImageSpec | AbstractSet[str]"],
        batch_size: "int | str",
        governor=None,
    ) -> List[CacheDecision]:
        specs = list(specs)
        decisions: List[CacheDecision] = []
        if governor is not None:
            self.last_batch_governor = governor
        size = governor.size if governor is not None else batch_size
        start = 0
        while start < len(specs):
            window = specs[start : start + size]
            keys = [
                spec.packages if isinstance(spec, ImageSpec)
                else frozenset(spec)
                for spec in window
            ]
            # Intern first so prediction masks match what request() sees.
            masks = [self._intern(packages)[0] for packages in keys]
            self._engine.begin_batch(masks)
            self._in_batch = True
            try:
                for packages in keys:
                    decisions.append(self.request(packages))
            finally:
                self._in_batch = False
                self._engine.end_batch()
            start += len(window)
            if governor is not None:
                stats = getattr(self._engine, "batch_stats", None)
                signal = stats["last_dirty_rate"] if stats else 0.0
                size = governor.observe(signal)
        return decisions

    def _find_hit(self, mask: int) -> Optional[CachedImage]:
        return self._engine.find_hit(mask)

    def _do_merge(
        self,
        target: CachedImage,
        mask: int,
        indices: np.ndarray,
        requested: int,
        distance: float,
        signature: Optional[MinHashSignature],
        request_index: int,
        candidates_examined: int = 0,
        conflicts_skipped: int = 0,
    ) -> CacheDecision:
        ins = self._ins
        t0 = perf_counter() if ins is not None else 0.0
        new_mask = target.mask | mask
        added_mask = new_mask ^ target.mask
        added = self._universe.indices_of_mask(added_mask)
        added_bytes = self._universe.bytes_of_indices(added)
        new_size = target.size + added_bytes

        self._cached_bytes += new_size - target.size
        self._account_add(added)
        merged_indices = np.union1d(target.indices, indices)
        target.mask = new_mask
        target.indices = merged_indices
        target.size = new_size
        target.last_used = self._clock
        target.last_request = self.stats.requests
        target.merge_count += 1
        self._engine.on_update(target)
        if signature is not None and target.signature is not None:
            target.signature = target.signature.merge(signature)
            if self._lsh is not None:
                # update() rewrites only the bands whose key changed, so
                # the index never accumulates stale buckets over long
                # merge chains (membership stays bands x live images).
                self._lsh.update(target.id, target.signature)
        if ins is not None:
            ins.merge_rewrite_s.observe(perf_counter() - t0)

        self.stats.merges += 1
        # Paper mechanism ("full"): the merged image is rewritten in its
        # entirety (§VI: "Each time a merge occurs, the resulting image
        # must be written out in its entirety").  The "delta" mode models
        # a copy-on-write image format that only writes the added content.
        written = new_size if self.merge_write_mode == "full" else added_bytes
        self.stats.bytes_written += written
        self.stats.used_bytes += new_size
        if ins is not None:
            ins.bytes_written.inc(written)
        self._emit(
            CacheEvent(
                EventKind.MERGE, request_index, target.id, new_size,
                bytes_written=written, requested_bytes=requested,
                distance=distance,
                candidates_examined=candidates_examined,
                conflicts_skipped=conflicts_skipped,
            )
        )
        evicted = self._evict_to_capacity(target.id, request_index)
        return CacheDecision(
            EventKind.MERGE, target, requested, distance=distance,
            bytes_added=added_bytes, evicted=evicted,
        )
