"""The LANDLORD facade: a lightweight job wrapper.

The paper deploys LANDLORD *"as an automated step during job submission"*:
on submit, it scans the image cache for something close to the job's
specification, creates or updates an image as necessary, and launches the
job inside it (§V, "LANDLORD Deployment").  :class:`Landlord` is that
wrapper: it owns a repository (for dependency closure), a
:class:`~repro.core.cache.LandlordCache` (Algorithm 1) and, optionally, a
Shrinkwrap cost model for preparation-time estimates.

>>> repo = build_sft_repository(n_packages=500)      # doctest: +SKIP
>>> landlord = Landlord(repo, capacity=50 * GB, alpha=0.8)   # doctest: +SKIP
>>> prepared = landlord.prepare(["app-0001/1.0/x86_64-el9"]) # doctest: +SKIP
>>> prepared.action                                  # doctest: +SKIP
<EventKind.INSERT: 'insert'>
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Optional, Union

from repro.core.cache import CacheDecision, CachedImage, LandlordCache
from repro.core.events import EventKind
from repro.core.spec import ImageSpec
from repro.packages.conflicts import ConflictPolicy
from repro.packages.repository import Repository

__all__ = ["Landlord", "PreparedContainer"]


@dataclass(frozen=True)
class PreparedContainer:
    """What a submitted job gets back: a ready image plus what it cost.

    Attributes:
        image: the cache image the job will run inside (it may contain
            more than was asked for — that surplus is the container-
            efficiency cost of merging).
        action: how the request was satisfied (hit / merge / insert).
        requested_bytes: size of the exactly-requested image.
        bytes_written: I/O charged preparing this container (0 on a hit).
        prep_seconds: modelled preparation wall-clock (0.0 without a
            Shrinkwrap model attached).
        distance: Jaccard distance to the merge target (merges only).
    """

    image: CachedImage
    action: EventKind
    requested_bytes: int
    bytes_written: int
    prep_seconds: float
    distance: Optional[float] = None

    @property
    def container_efficiency(self) -> float:
        """Requested size over the size of the image actually used."""
        if self.image.size == 0:
            return 1.0
        return self.requested_bytes / self.image.size


class Landlord:
    """Online container management for a stream of job submissions.

    Args:
        repository: the software repository; supplies dependency closure
            and package sizes.
        capacity: image-cache capacity in bytes.
        alpha: the merge threshold (maximal Jaccard distance); the paper
            recommends a moderate 0.8 to start (§VI, "Tuning LANDLORD").
        conflict_policy: optional version-conflict checking.
        shrinkwrap: optional :class:`~repro.cvmfs.shrinkwrap.Shrinkwrap`
            used purely for preparation-time estimates.
        expand_closure: when True (default), specs passed to
            :meth:`prepare` are expanded to their dependency closure before
            hitting the cache — submit what the job *asks for* and LANDLORD
            completes it.  Disable for pre-closed specs (the simulator).
        **cache_kwargs: forwarded to :class:`LandlordCache` (hit selection,
            candidate ordering, MinHash prefiltering, event recording...).
    """

    def __init__(
        self,
        repository: Repository,
        capacity: int,
        alpha: float = 0.8,
        conflict_policy: Optional[ConflictPolicy] = None,
        shrinkwrap: Optional[object] = None,
        expand_closure: bool = True,
        **cache_kwargs: object,
    ):
        self.repository = repository
        self.shrinkwrap = shrinkwrap
        self.expand_closure = expand_closure
        self.cache = LandlordCache(
            capacity=capacity,
            alpha=alpha,
            package_size=repository.size_of,
            conflict_policy=conflict_policy,
            **cache_kwargs,  # type: ignore[arg-type]
        )

    @property
    def alpha(self) -> float:
        return self.cache.alpha

    @property
    def stats(self):
        """The underlying cache statistics."""
        return self.cache.stats

    def resolve(
        self, spec: Union[ImageSpec, AbstractSet[str], Iterable[str]]
    ) -> ImageSpec:
        """Expand a requirement set to its full dependency closure."""
        packages = spec.packages if isinstance(spec, ImageSpec) else spec
        return ImageSpec(self.repository.closure(packages))

    def prepare(
        self, spec: Union[ImageSpec, AbstractSet[str], Iterable[str]]
    ) -> PreparedContainer:
        """Prepare a suitable container image for one job submission."""
        if self.expand_closure:
            closed = self.resolve(spec)
        else:
            closed = spec if isinstance(spec, ImageSpec) else ImageSpec(spec)
        written_before = self.cache.stats.bytes_written
        decision: CacheDecision = self.cache.request(closed)
        bytes_written = self.cache.stats.bytes_written - written_before
        prep_seconds = 0.0
        if self.shrinkwrap is not None and bytes_written:
            # Only newly materialised content is downloaded; a merge rewrite
            # re-writes the whole image but re-fetches nothing it had.
            prep_seconds = self.shrinkwrap.prep_time(
                decision.bytes_added, bytes_written
            )
        return PreparedContainer(
            image=decision.image,
            action=decision.action,
            requested_bytes=decision.requested_bytes,
            bytes_written=bytes_written,
            prep_seconds=prep_seconds,
            distance=decision.distance,
        )
