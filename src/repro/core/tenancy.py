"""Multi-tenant container management — the paper's stated future work.

§V: *"For the LHC experiments, CVMFS data is normally public and shareable,
making a LANDLORD plugin particularly simple to implement.  A more
general-purpose plugin would need to take into account data security and
privacy, which we leave as future research."*

This module implements that plugin surface.  A site serving several
tenants (users, experiments, projects) must decide whether one tenant's
jobs may run inside (or merge into) images containing another tenant's
requested software.  Three isolation modes:

- ``"shared"`` — CVMFS-style public data: one cache, full cross-tenant
  reuse and merging (the paper's LHC deployment).
- ``"isolated"`` — hard separation: one cache per tenant, each with its
  own capacity quota; no image is ever visible across tenants.
- ``"public-core"`` — split custody: packages matching a site-defined
  *public* predicate (e.g. the base/toolchain layers everyone may see) are
  managed in one shared cache, while each tenant's private remainder lives
  in a per-tenant cache.  A job runs with the pair of images; accounting
  charges both.

The storage price of isolation — every tenant duplicating the common core —
is exactly what ``examples/``/``repro.experiments`` quantify through
:meth:`MultiTenantLandlord.storage_by_tenant`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.cache import CacheDecision, CacheStats, LandlordCache
from repro.core.events import EventKind
from repro.core.spec import ImageSpec
from repro.packages.repository import Repository

__all__ = ["ISOLATION_MODES", "TenantDecision", "MultiTenantLandlord"]

ISOLATION_MODES = ("shared", "isolated", "public-core")

SpecLike = Union[ImageSpec, AbstractSet[str]]


@dataclass(frozen=True)
class TenantDecision:
    """Outcome of one tenant-scoped request.

    ``public`` is None except in public-core mode, where a job runs with a
    shared public image plus (possibly) a private remainder image.
    """

    tenant: str
    private: Optional[CacheDecision]
    public: Optional[CacheDecision] = None

    @property
    def actions(self) -> Tuple[EventKind, ...]:
        return tuple(
            d.action for d in (self.public, self.private) if d is not None
        )

    @property
    def bytes_used(self) -> int:
        return sum(
            d.image.size for d in (self.public, self.private) if d is not None
        )


class MultiTenantLandlord:
    """Tenant-aware LANDLORD front end.

    Args:
        repository: the shared software repository (sizes + closure).
        capacity: total image-cache bytes across all tenants.
        alpha: merge threshold for every underlying cache.
        isolation: one of :data:`ISOLATION_MODES`.
        tenants: tenant names.  Required for ``isolated``/``public-core``;
            ignored for ``shared`` (tenants are implicit).
        quotas: optional byte quota per tenant (isolated/public-core);
            defaults to an even split of ``capacity`` (after reserving
            ``public_fraction`` for the shared cache in public-core mode).
        is_public: predicate classifying a package id as public
            (public-core mode only).  Default: everything private.
        expand_closure: resolve dependency closures before caching.
        cache_kwargs: forwarded to every underlying LandlordCache.
    """

    def __init__(
        self,
        repository: Repository,
        capacity: int,
        alpha: float = 0.8,
        isolation: str = "shared",
        tenants: Optional[List[str]] = None,
        quotas: Optional[Mapping[str, int]] = None,
        is_public: Optional[Callable[[str], bool]] = None,
        public_fraction: float = 0.5,
        expand_closure: bool = True,
        **cache_kwargs: object,
    ):
        if isolation not in ISOLATION_MODES:
            raise ValueError(
                f"isolation must be one of {ISOLATION_MODES}, got {isolation!r}"
            )
        if isolation != "shared" and not tenants:
            raise ValueError(f"{isolation!r} isolation needs explicit tenants")
        if not 0.0 < public_fraction < 1.0 and isolation == "public-core":
            raise ValueError("public_fraction must be in (0, 1)")
        self.repository = repository
        self.isolation = isolation
        self.alpha = alpha
        self.expand_closure = expand_closure
        self._is_public = is_public or (lambda pid: False)
        self._caches: Dict[str, LandlordCache] = {}
        self._public_cache: Optional[LandlordCache] = None
        self.tenants = list(tenants or [])

        def make_cache(cap: int) -> LandlordCache:
            return LandlordCache(
                cap, alpha, repository.size_of, **cache_kwargs  # type: ignore[arg-type]
            )

        if isolation == "shared":
            self._shared = make_cache(capacity)
            return
        pool = capacity
        if isolation == "public-core":
            public_capacity = int(capacity * public_fraction)
            self._public_cache = make_cache(public_capacity)
            pool = capacity - public_capacity
        if quotas is not None:
            missing = set(self.tenants) - set(quotas)
            if missing:
                raise ValueError(f"quotas missing for tenants: {sorted(missing)}")
            if sum(quotas[t] for t in self.tenants) > pool:
                raise ValueError("tenant quotas exceed available capacity")
            per_tenant = {t: int(quotas[t]) for t in self.tenants}
        else:
            share = pool // len(self.tenants)
            per_tenant = {t: share for t in self.tenants}
        for tenant in self.tenants:
            self._caches[tenant] = make_cache(per_tenant[tenant])

    # -- plumbing ---------------------------------------------------------------

    def _closed(self, spec: SpecLike) -> FrozenSet[str]:
        packages = spec.packages if isinstance(spec, ImageSpec) else frozenset(spec)
        if self.expand_closure:
            return self.repository.closure(packages)
        return packages

    def cache_for(self, tenant: str) -> LandlordCache:
        """The cache holding a tenant's (private) images."""
        if self.isolation == "shared":
            return self._shared
        try:
            return self._caches[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant: {tenant!r}") from None

    @property
    def public_cache(self) -> Optional[LandlordCache]:
        return self._public_cache

    # -- the API ------------------------------------------------------------------

    def prepare(self, tenant: str, spec: SpecLike) -> TenantDecision:
        """Prepare the image(s) for one tenant's job."""
        closed = self._closed(spec)
        if self.isolation == "shared":
            return TenantDecision(tenant, self._shared.request(closed))
        cache = self.cache_for(tenant)
        if self.isolation == "isolated":
            return TenantDecision(tenant, cache.request(closed))
        # public-core: split the closed spec by custody.
        public_part = frozenset(p for p in closed if self._is_public(p))
        private_part = closed - public_part
        public_decision = (
            self._public_cache.request(public_part) if public_part else None
        )
        private_decision = cache.request(private_part) if private_part else None
        return TenantDecision(tenant, private_decision, public_decision)

    # -- accounting ------------------------------------------------------------------

    def storage_by_tenant(self) -> Dict[str, int]:
        """Bytes currently held per tenant (plus ``"<public>"`` if any)."""
        if self.isolation == "shared":
            return {"<shared>": self._shared.cached_bytes}
        out = {t: c.cached_bytes for t, c in self._caches.items()}
        if self._public_cache is not None:
            out["<public>"] = self._public_cache.cached_bytes
        return out

    @property
    def total_cached_bytes(self) -> int:
        return sum(self.storage_by_tenant().values())

    @property
    def total_unique_bytes(self) -> int:
        """Distinct package bytes summed across custody domains.

        Duplication *across* tenant caches is intentionally counted — it is
        the storage price of isolation this class exists to expose.
        """
        if self.isolation == "shared":
            return self._shared.unique_bytes
        total = sum(c.unique_bytes for c in self._caches.values())
        if self._public_cache is not None:
            total += self._public_cache.unique_bytes
        return total

    def combined_stats(self) -> CacheStats:
        """Element-wise sum of all underlying cache statistics."""
        caches: List[LandlordCache] = (
            [self._shared] if self.isolation == "shared"
            else list(self._caches.values())
        )
        if self._public_cache is not None:
            caches.append(self._public_cache)
        combined = CacheStats()
        for cache in caches:
            for field_name, value in cache.stats.__dict__.items():
                setattr(
                    combined, field_name,
                    getattr(combined, field_name) + value,
                )
        return combined
