"""Container specifications.

The paper's key insight (§IV): *container specifications offer more
opportunities for management and optimization than containers themselves*.
A specification is a declarative, unordered set of package requirements.
Unlike build recipes, specifications can be compared (subset satisfaction),
combined (union/merge) and split without rebuilding from scratch.

:class:`ImageSpec` is an immutable value type wrapping a frozenset of
package ids.  Two operations carry the whole system:

- ``a.satisfies(b)`` — an image built from ``a`` can run a job requesting
  ``b`` iff ``b ⊆ a`` (the image meets the minimum requirements and merely
  includes extra, unrequested packages).
- ``a.merge(b)`` — the union spec; an image built from it can serve any job
  either constituent served.  Merge is commutative, associative and
  idempotent (property-tested in ``tests/core/test_spec_properties.py``).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, Optional

__all__ = ["ImageSpec"]


class ImageSpec:
    """An immutable set of package requirements for a container image.

    Construction accepts any iterable of package-id strings; duplicates
    collapse.  The optional ``label`` is carried for provenance in reports
    and merged labels are joined with ``+`` (truncated, purely cosmetic).
    """

    __slots__ = ("_packages", "_label", "_hash")

    def __init__(self, packages: Iterable[str] = (), label: str = ""):
        if isinstance(packages, ImageSpec):
            pkgs: FrozenSet[str] = packages._packages
        else:
            pkgs = frozenset(packages)
        for pid in pkgs:
            if not isinstance(pid, str) or not pid:
                raise TypeError(f"package ids must be non-empty strings, got {pid!r}")
        self._packages = pkgs
        self._label = label
        self._hash: Optional[int] = None

    # -- accessors -----------------------------------------------------------

    @property
    def packages(self) -> FrozenSet[str]:
        """The underlying frozenset of package ids."""
        return self._packages

    @property
    def label(self) -> str:
        """Human-readable provenance label (may be empty)."""
        return self._label

    def __len__(self) -> int:
        return len(self._packages)

    def __iter__(self) -> Iterator[str]:
        return iter(self._packages)

    def __contains__(self, package_id: object) -> bool:
        return package_id in self._packages

    def __bool__(self) -> bool:
        return bool(self._packages)

    # -- equality / hashing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ImageSpec):
            return self._packages == other._packages
        if isinstance(other, frozenset):
            return self._packages == other
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._packages)
        return self._hash

    def __repr__(self) -> str:
        label = f" {self._label!r}" if self._label else ""
        return f"ImageSpec({len(self._packages)} pkgs{label})"

    # -- the operations that matter -------------------------------------------

    def satisfies(self, request: "ImageSpec") -> bool:
        """True if an image with these contents can serve ``request``.

        Satisfaction is plain superset inclusion: every requested package is
        present; extra packages are harmless (§IV, "strict subset" reuse).
        """
        return request._packages <= self._packages

    def issubset(self, other: "ImageSpec") -> bool:
        """True if every package here is also in ``other``."""
        return self._packages <= other._packages

    def merge(self, other: "ImageSpec") -> "ImageSpec":
        """The composite specification: union of requirements (§IV).

        The result can be used in place of either constituent, since it
        meets the minimum requirements given in each.
        """
        if other._packages <= self._packages:
            return self
        if self._packages <= other._packages and not self._label:
            return other
        label = ""
        if self._label or other._label:
            label = "+".join(x for x in (self._label, other._label) if x)[:80]
        return ImageSpec(self._packages | other._packages, label=label)

    def intersection(self, other: "ImageSpec") -> "ImageSpec":
        """Shared requirements of two specifications."""
        return ImageSpec(self._packages & other._packages)

    def difference(self, other: "ImageSpec") -> "ImageSpec":
        """Packages required here but not in ``other`` (a split operation)."""
        return ImageSpec(self._packages - other._packages)

    # Operator sugar mirroring set semantics.
    __or__ = merge
    __and__ = intersection
    __sub__ = difference

    def __le__(self, other: "ImageSpec") -> bool:
        return self.issubset(other)

    def __ge__(self, other: "ImageSpec") -> bool:
        return other.issubset(self)

    # -- conveniences -----------------------------------------------------------

    @staticmethod
    def union_all(specs: Iterable["ImageSpec"]) -> "ImageSpec":
        """Union of many specs (the α=1 single all-purpose image)."""
        acc: set = set()
        for spec in specs:
            acc |= spec._packages
        return ImageSpec(acc)

    def as_set(self) -> AbstractSet[str]:
        """Alias for :attr:`packages`, for APIs that want a plain set."""
        return self._packages
