"""Efficiency metrics and operational-zone detection (§VI).

The paper's two utilization metrics:

- **cache efficiency** — unique data / total data in the cache.  Low when
  many images duplicate the same packages; 100% for a single merged image.
- **container efficiency** — requested image size / size of the image the
  job actually used.  100% without merging; poor when jobs run inside
  bloated, heavily merged images.

And its two practical limits on α (Figure 8): a floor on cache efficiency
(below it the cache thrashes on duplicated content) and a ceiling on the
merge-driven I/O overhead (the paper suggests *"allowing at most a twofold
increase in the compute and I/O time compared to directly creating the
requested images"*).  The α range between the limits is the **operational
zone**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.sweep import SweepResult

__all__ = [
    "cache_efficiency",
    "container_efficiency",
    "OperationalZone",
    "find_operational_zone",
]


def cache_efficiency(unique_bytes: float, total_bytes: float) -> float:
    """Unique data over total data in cache; 1.0 for an empty cache."""
    if total_bytes < 0 or unique_bytes < 0:
        raise ValueError("byte counts must be non-negative")
    if unique_bytes > total_bytes:
        raise ValueError("unique data cannot exceed total data")
    if total_bytes == 0:
        return 1.0
    return unique_bytes / total_bytes


def container_efficiency(requested_bytes: float, used_bytes: float) -> float:
    """Requested size over used size; 1.0 when nothing was used."""
    if requested_bytes < 0 or used_bytes < 0:
        raise ValueError("byte counts must be non-negative")
    if requested_bytes > used_bytes:
        raise ValueError("a job cannot request more than the image it used")
    if used_bytes == 0:
        return 1.0
    return requested_bytes / used_bytes


@dataclass(frozen=True)
class OperationalZone:
    """The viable α range between the thrashing and overhead limits.

    ``lower``/``upper`` are α grid values (inclusive); ``None`` on a side
    means no grid point satisfied that constraint.
    """

    lower: Optional[float]
    upper: Optional[float]
    cache_efficiency_floor: float
    write_amplification_ceiling: float
    container_efficiency_floor: float = 0.0

    @property
    def valid(self) -> bool:
        return (
            self.lower is not None
            and self.upper is not None
            and self.lower <= self.upper
        )

    @property
    def width(self) -> float:
        if not self.valid:
            return 0.0
        return float(self.upper - self.lower)  # type: ignore[operator]

    def contains(self, alpha: float) -> bool:
        """True if ``alpha`` lies inside the zone."""
        return self.valid and self.lower <= alpha <= self.upper  # type: ignore[operator]


def find_operational_zone(
    sweep: SweepResult,
    cache_efficiency_floor: float = 0.3,
    write_amplification_ceiling: float = 2.0,
    container_efficiency_floor: float = 0.2,
) -> OperationalZone:
    """Locate the α range satisfying the paper's limits.

    A grid point qualifies when its median cache efficiency is at least the
    floor (left limit: below it the cache thrashes on duplicates), its
    median write amplification (actual/requested writes, Fig. 4c) is at
    most the ceiling, and its median container efficiency is at least
    ``container_efficiency_floor`` (right limit: Figure 8's "Excessive
    Image Size" region, where merged images dwarf what jobs asked for).
    The zone is the longest contiguous qualifying run.
    """
    eff = sweep.metric("cache_efficiency")
    amp = sweep.metric("write_amplification")
    cont = sweep.metric("container_efficiency")
    ok = (
        (eff >= cache_efficiency_floor)
        & (amp <= write_amplification_ceiling)
        & (cont >= container_efficiency_floor)
    )
    best: Tuple[int, int] = (0, -1)  # [start, end] inclusive; empty
    start = None
    for i, good in enumerate(list(ok) + [False]):  # sentinel flush
        if good and start is None:
            start = i
        elif not good and start is not None:
            if i - 1 - start > best[1] - best[0]:
                best = (start, i - 1)
            start = None
    if best[1] < best[0]:
        return OperationalZone(
            None,
            None,
            cache_efficiency_floor,
            write_amplification_ceiling,
            container_efficiency_floor,
        )
    return OperationalZone(
        lower=float(sweep.alphas[best[0]]),
        upper=float(sweep.alphas[best[1]]),
        cache_efficiency_floor=cache_efficiency_floor,
        write_amplification_ceiling=write_amplification_ceiling,
        container_efficiency_floor=container_efficiency_floor,
    )
