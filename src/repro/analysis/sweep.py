"""Parameter sweeps with repetition and median aggregation.

The paper's protocol (§VI): *"for a given choice of cache size, job count,
etc. we repeated the simulation 20 times and reported the median behavior
over the runs.  At each choice of α (in steps of 0.05) we performed a set
of 20 simulated runs."*  The repository is fixed across repetitions (it
models the one real SFT tree); only the request stream varies by seed.

Every ``(α, repetition)`` cell is an independent simulation, so sweeps
fan out over worker processes (:mod:`repro.parallel`) when asked to:
pass ``workers=N`` (or set ``REPRO_WORKERS``) for process-pool execution,
or share one :class:`~repro.parallel.SimulationPool` across several
sweeps via ``pool=``.  Repetition seeds derive from
:func:`repro.parallel.repetition_seeds` in both the serial and parallel
paths, and results are aggregated in cell order — a parallel sweep is
**bit-identical** to a serial one, whatever the worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.htc.simulator import SimulationConfig, SimulationResult, simulate
from repro.packages.repository import Repository
from repro.packages.sft import build_experiment_repository
from repro.parallel.pool import resolve_workers
from repro.parallel.seeds import repetition_seeds
from repro.parallel.simulations import (
    RepositorySource,
    RepositorySpec,
    SimulationPool,
    merge_result_metrics,
)

__all__ = ["SweepResult", "run_repetitions", "alpha_sweep", "default_alphas"]


def default_alphas(step: float = 0.05, lo: float = 0.4, hi: float = 1.0) -> np.ndarray:
    """The paper's α grid: ``lo`` to ``hi`` inclusive in ``step`` steps."""
    count = int(round((hi - lo) / step)) + 1
    return np.round(np.linspace(lo, hi, count), 6)


def _repetition_configs(
    config: SimulationConfig, repetitions: int
) -> List[SimulationConfig]:
    """One config per repetition, seeds derived via ``SeedSequence``."""
    seeds = repetition_seeds(config.seed, repetitions)
    return [
        config.with_(seed=seed, record_timeline=False) for seed in seeds
    ]


def _repository_source(
    config: SimulationConfig, repository: Optional[Repository]
) -> RepositorySource:
    """What to install in workers: the object, or a rebuildable spec."""
    if repository is not None:
        return repository
    if config.seed is None:
        # An unseeded repository cannot be rebuilt identically per worker;
        # build it once here and ship the object instead.
        return build_experiment_repository(
            config.repo_kind,
            seed=config.seed,
            n_packages=config.n_packages,
            target_total_size=config.repo_total_size,
        )
    return RepositorySpec.from_config(config)


def run_repetitions(
    config: SimulationConfig,
    repetitions: int = 20,
    repository: Optional[Repository] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    workers: Optional[int] = None,
    pool: Optional[SimulationPool] = None,
    metrics=None,
    telemetry: Optional[str] = None,
) -> List[SimulationResult]:
    """Run ``repetitions`` simulations differing only in workload seed.

    ``workers`` fans the repetitions out over processes (default: serial,
    or ``REPRO_WORKERS``); ``pool`` reuses an existing
    :class:`~repro.parallel.SimulationPool` instead (its repository
    source takes precedence over ``repository``).  Results are ordered by
    repetition index and identical for every worker count.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) makes every
    repetition collect per-run metrics, merged into the registry in
    repetition order — deterministic families come out bit-identical
    whatever the worker count.  ``telemetry`` (a
    :class:`~repro.obs.telemetry.TelemetryCollector` base URL) makes
    workers additionally stream each cell's snapshot live to that
    endpoint; it implies per-run metric collection and applies only
    when this call builds its own pool (a caller-provided ``pool``
    carries its own telemetry setting).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    rep_configs = _repetition_configs(config, repetitions)
    if metrics is not None or telemetry is not None:
        rep_configs = [c.with_(collect_metrics=True) for c in rep_configs]
    rep_labels = [f"rep={rep}" for rep in range(repetitions)]

    def bridge(done: int, total: int, _label: str) -> None:
        if progress is not None:
            progress(done, total)

    def finish(results: List[SimulationResult]) -> List[SimulationResult]:
        if metrics is not None:
            merge_result_metrics(results, metrics)
        return results

    if pool is not None:
        return finish(pool.run(rep_configs, labels=rep_labels,
                               progress=bridge))
    n_workers = resolve_workers(workers)
    if n_workers > 1 or telemetry is not None:
        source = _repository_source(config, repository)
        with SimulationPool(
            source, n_workers, telemetry=telemetry
        ) as own_pool:
            return finish(own_pool.run(rep_configs, labels=rep_labels,
                                       progress=bridge))
    if repository is None:
        repository = build_experiment_repository(
            config.repo_kind,
            seed=config.seed,
            n_packages=config.n_packages,
            target_total_size=config.repo_total_size,
        )
    results = []
    for rep, rep_config in enumerate(rep_configs):
        results.append(simulate(rep_config, repository=repository))
        if progress is not None:
            progress(rep + 1, repetitions)
    return finish(results)


@dataclass
class SweepResult:
    """Median-aggregated metrics across an α grid.

    ``series[metric]`` is an array aligned with ``alphas``; ``raw`` holds
    the full per-repetition values for dispersion analysis
    (``raw[metric][i_alpha, i_rep]``).
    """

    alphas: np.ndarray
    series: Dict[str, np.ndarray]
    raw: Dict[str, np.ndarray] = field(default_factory=dict)
    label: str = ""

    def metric(self, name: str) -> np.ndarray:
        """Median series for one metric, aligned with :attr:`alphas`."""
        try:
            return self.series[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; have {sorted(self.series)}"
            ) from None

    def percentile(self, name: str, q: float) -> np.ndarray:
        """Per-α percentile of a metric across repetitions (q in [0, 100]).

        Useful for dispersion bands around the median series; requires the
        raw per-repetition values (always kept by :func:`alpha_sweep`).
        """
        if name not in self.raw:
            raise KeyError(
                f"no raw repetition data for metric {name!r}"
            )
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        return np.percentile(self.raw[name], q, axis=1)

    def iqr(self, name: str) -> np.ndarray:
        """Inter-quartile range per α (spread of the 20 repetitions)."""
        return self.percentile(name, 75) - self.percentile(name, 25)

    def at_alpha(self, alpha: float) -> Dict[str, float]:
        """All median metrics at the grid point nearest ``alpha``."""
        idx = int(np.argmin(np.abs(self.alphas - alpha)))
        return {name: float(vals[idx]) for name, vals in self.series.items()}

    def to_jsonable(self) -> dict:
        """JSON-serialisable view (label, grid, median series)."""
        return {
            "label": self.label,
            "alphas": self.alphas.tolist(),
            "series": {k: v.tolist() for k, v in self.series.items()},
        }


def _aggregate_cells(
    grid: np.ndarray,
    results: Sequence[SimulationResult],
    repetitions: int,
    label: str,
) -> SweepResult:
    """Fold per-cell results (α-major, repetition-minor) into a sweep."""
    summaries = [r.summary() for r in results]
    metric_names = sorted(summaries[0])
    raw_arrays = {
        name: np.asarray(
            [
                [summaries[i * repetitions + rep][name]
                 for rep in range(repetitions)]
                for i in range(grid.size)
            ],
            dtype=float,
        )
        for name in metric_names
    }
    series = {name: np.median(arr, axis=1) for name, arr in raw_arrays.items()}
    return SweepResult(alphas=grid, series=series, raw=raw_arrays, label=label)


def alpha_sweep(
    base_config: SimulationConfig,
    alphas: Optional[Sequence[float]] = None,
    repetitions: int = 20,
    repository: Optional[Repository] = None,
    label: str = "",
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    pool: Optional[SimulationPool] = None,
    metrics=None,
    telemetry: Optional[str] = None,
) -> SweepResult:
    """Sweep α over a grid, ``repetitions`` runs per point, median per metric.

    The repository is built once from the base config and reused for every
    point — matching the paper, where the software tree is an input, not a
    random variable.  With ``workers=N`` (or a shared ``pool=``) the
    ``(α, repetition)`` cells fan out over worker processes, each of which
    builds that repository once; results are keyed by cell index, so the
    returned :class:`SweepResult` is bit-identical to the serial one.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) makes every cell
    collect per-run metrics, merged into the registry in cell order —
    deterministic families are bit-identical for any worker count.
    ``telemetry`` (a :class:`~repro.obs.telemetry.TelemetryCollector`
    base URL) makes workers stream each cell's snapshot live to that
    endpoint as it completes; it implies per-run metric collection and
    applies only when this call builds its own pool.
    """
    grid = np.asarray(alphas if alphas is not None else default_alphas(), dtype=float)
    if grid.size == 0:
        raise ValueError("alpha grid must be non-empty")
    if np.any((grid < 0) | (grid > 1)):
        raise ValueError("alphas must lie in [0, 1]")
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    rep_configs = _repetition_configs(base_config, repetitions)
    if metrics is not None or telemetry is not None:
        rep_configs = [c.with_(collect_metrics=True) for c in rep_configs]
    cell_configs = [
        rep_config.with_(alpha=float(alpha))
        for alpha in grid
        for rep_config in rep_configs
    ]
    cell_labels = [
        f"alpha={alpha:.2f} rep={rep}"
        for alpha in grid
        for rep in range(repetitions)
    ]

    def bridge(done: int, total: int, cell_label: str) -> None:
        if progress is not None:
            progress(f"{cell_label} ({done}/{total})")

    n_workers = pool.workers if pool is not None else resolve_workers(workers)
    if pool is not None or n_workers > 1 or telemetry is not None:
        own_pool = None
        if pool is None:
            source = _repository_source(base_config, repository)
            pool = own_pool = SimulationPool(
                source, n_workers, telemetry=telemetry
            )
        try:
            results = pool.run(cell_configs, labels=cell_labels,
                               progress=bridge)
        finally:
            if own_pool is not None:
                own_pool.close()
        if metrics is not None:
            merge_result_metrics(results, metrics)
        return _aggregate_cells(grid, results, repetitions, label)

    if repository is None:
        repository = build_experiment_repository(
            base_config.repo_kind,
            seed=base_config.seed,
            n_packages=base_config.n_packages,
            target_total_size=base_config.repo_total_size,
        )
    results = []
    for i, alpha in enumerate(grid):
        for config in rep_configs:
            results.append(
                simulate(config.with_(alpha=float(alpha)),
                         repository=repository)
            )
        if progress is not None:
            progress(f"alpha={alpha:.2f} ({i + 1}/{grid.size})")
    if metrics is not None:
        merge_result_metrics(results, metrics)
    return _aggregate_cells(grid, results, repetitions, label)
