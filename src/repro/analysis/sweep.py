"""Parameter sweeps with repetition and median aggregation.

The paper's protocol (§VI): *"for a given choice of cache size, job count,
etc. we repeated the simulation 20 times and reported the median behavior
over the runs.  At each choice of α (in steps of 0.05) we performed a set
of 20 simulated runs."*  The repository is fixed across repetitions (it
models the one real SFT tree); only the request stream varies by seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.htc.simulator import SimulationConfig, SimulationResult, simulate
from repro.packages.repository import Repository
from repro.packages.sft import build_experiment_repository

__all__ = ["SweepResult", "run_repetitions", "alpha_sweep", "default_alphas"]


def default_alphas(step: float = 0.05, lo: float = 0.4, hi: float = 1.0) -> np.ndarray:
    """The paper's α grid: ``lo`` to ``hi`` inclusive in ``step`` steps."""
    count = int(round((hi - lo) / step)) + 1
    return np.round(np.linspace(lo, hi, count), 6)


def run_repetitions(
    config: SimulationConfig,
    repetitions: int = 20,
    repository: Optional[Repository] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[SimulationResult]:
    """Run ``repetitions`` simulations differing only in workload seed."""
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    if repository is None:
        repository = build_experiment_repository(
            config.repo_kind,
            seed=config.seed,
            n_packages=config.n_packages,
            target_total_size=config.repo_total_size,
        )
    results = []
    for rep in range(repetitions):
        rep_config = config.with_(
            seed=(config.seed or 0) * 10_000 + rep,
            record_timeline=False,
        )
        results.append(simulate(rep_config, repository=repository))
        if progress is not None:
            progress(rep + 1, repetitions)
    return results


@dataclass
class SweepResult:
    """Median-aggregated metrics across an α grid.

    ``series[metric]`` is an array aligned with ``alphas``; ``raw`` holds
    the full per-repetition values for dispersion analysis
    (``raw[metric][i_alpha, i_rep]``).
    """

    alphas: np.ndarray
    series: Dict[str, np.ndarray]
    raw: Dict[str, np.ndarray] = field(default_factory=dict)
    label: str = ""

    def metric(self, name: str) -> np.ndarray:
        """Median series for one metric, aligned with :attr:`alphas`."""
        try:
            return self.series[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; have {sorted(self.series)}"
            ) from None

    def percentile(self, name: str, q: float) -> np.ndarray:
        """Per-α percentile of a metric across repetitions (q in [0, 100]).

        Useful for dispersion bands around the median series; requires the
        raw per-repetition values (always kept by :func:`alpha_sweep`).
        """
        if name not in self.raw:
            raise KeyError(
                f"no raw repetition data for metric {name!r}"
            )
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        return np.percentile(self.raw[name], q, axis=1)

    def iqr(self, name: str) -> np.ndarray:
        """Inter-quartile range per α (spread of the 20 repetitions)."""
        return self.percentile(name, 75) - self.percentile(name, 25)

    def at_alpha(self, alpha: float) -> Dict[str, float]:
        """All median metrics at the grid point nearest ``alpha``."""
        idx = int(np.argmin(np.abs(self.alphas - alpha)))
        return {name: float(vals[idx]) for name, vals in self.series.items()}

    def to_jsonable(self) -> dict:
        """JSON-serialisable view (label, grid, median series)."""
        return {
            "label": self.label,
            "alphas": self.alphas.tolist(),
            "series": {k: v.tolist() for k, v in self.series.items()},
        }


def alpha_sweep(
    base_config: SimulationConfig,
    alphas: Optional[Sequence[float]] = None,
    repetitions: int = 20,
    repository: Optional[Repository] = None,
    label: str = "",
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Sweep α over a grid, ``repetitions`` runs per point, median per metric.

    The repository is built once from the base config and reused for every
    point — matching the paper, where the software tree is an input, not a
    random variable.
    """
    grid = np.asarray(alphas if alphas is not None else default_alphas(), dtype=float)
    if grid.size == 0:
        raise ValueError("alpha grid must be non-empty")
    if np.any((grid < 0) | (grid > 1)):
        raise ValueError("alphas must lie in [0, 1]")
    if repository is None:
        repository = build_experiment_repository(
            base_config.repo_kind,
            seed=base_config.seed,
            n_packages=base_config.n_packages,
            target_total_size=base_config.repo_total_size,
        )
    metric_names: List[str] = []
    raw: Dict[str, List[List[float]]] = {}
    for i, alpha in enumerate(grid):
        results = run_repetitions(
            base_config.with_(alpha=float(alpha)),
            repetitions=repetitions,
            repository=repository,
        )
        summaries = [r.summary() for r in results]
        if not metric_names:
            metric_names = sorted(summaries[0])
            for name in metric_names:
                raw[name] = []
        for name in metric_names:
            raw[name].append([s[name] for s in summaries])
        if progress is not None:
            progress(f"alpha={alpha:.2f} ({i + 1}/{grid.size})")
    raw_arrays = {name: np.asarray(vals, dtype=float) for name, vals in raw.items()}
    series = {name: np.median(arr, axis=1) for name, arr in raw_arrays.items()}
    return SweepResult(alphas=grid, series=series, raw=raw_arrays, label=label)
