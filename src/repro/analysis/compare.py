"""Sweep comparison: quantify how two configurations differ across α.

Sweeps are the unit of evidence in this reproduction; comparing them is
how every "X vs Y" question gets answered (dependency vs random workloads,
cache sizes, policy ablations, or two versions of the code).  This module
computes per-metric deltas on a shared α grid and renders them as tables,
with a tolerance-based verdict usable as a regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.sweep import SweepResult
from repro.util.tables import render_table

__all__ = ["MetricDelta", "SweepComparison", "compare_sweeps"]


@dataclass(frozen=True)
class MetricDelta:
    """One metric's difference between two sweeps (b − a), per α."""

    metric: str
    alphas: np.ndarray
    a: np.ndarray
    b: np.ndarray

    @property
    def absolute(self) -> np.ndarray:
        return self.b - self.a

    @property
    def relative(self) -> np.ndarray:
        """(b − a) / max(|a|, eps); 0 where both sides are 0."""
        denom = np.maximum(np.abs(self.a), 1e-12)
        out = (self.b - self.a) / denom
        out[(self.a == 0) & (self.b == 0)] = 0.0
        return out

    @property
    def max_relative(self) -> float:
        return float(np.max(np.abs(self.relative)))


@dataclass
class SweepComparison:
    """All shared metrics of two sweeps, aligned on the common α grid."""

    label_a: str
    label_b: str
    deltas: Dict[str, MetricDelta]

    def delta(self, metric: str) -> MetricDelta:
        """The delta record for one shared metric."""
        try:
            return self.deltas[metric]
        except KeyError:
            raise KeyError(
                f"metric {metric!r} not shared; have {sorted(self.deltas)}"
            ) from None

    def within(self, tolerance: float, metrics: Optional[Sequence[str]] = None) -> bool:
        """True if every (selected) metric stays within relative tolerance.

        The regression-gate predicate: rerun a reference sweep, compare
        against stored results, assert ``comparison.within(0.05)``.
        """
        names = metrics if metrics is not None else sorted(self.deltas)
        return all(self.delta(name).max_relative <= tolerance for name in names)

    def table(self, metrics: Sequence[str]) -> str:
        """Side-by-side values with relative deltas, one row per α."""
        header = ["alpha"]
        for name in metrics:
            header += [f"{name} ({self.label_a})", f"({self.label_b})", "Δ%"]
        first = self.delta(metrics[0])
        rows = []
        for i, alpha in enumerate(first.alphas):
            row: List[object] = [f"{alpha:.2f}"]
            for name in metrics:
                d = self.delta(name)
                row += [
                    f"{d.a[i]:.4g}",
                    f"{d.b[i]:.4g}",
                    f"{100 * d.relative[i]:+.1f}%",
                ]
            rows.append(row)
        return render_table(rows, header=header)


def compare_sweeps(
    a: SweepResult,
    b: SweepResult,
    label_a: str = "a",
    label_b: str = "b",
) -> SweepComparison:
    """Align two sweeps on their common α grid and diff every shared metric.

    Raises :class:`ValueError` when the grids share no points — comparing
    disjoint sweeps silently would be meaningless.
    """
    common = np.intersect1d(np.round(a.alphas, 6), np.round(b.alphas, 6))
    if common.size == 0:
        raise ValueError("sweeps share no alpha grid points")
    idx_a = [int(np.argmin(np.abs(a.alphas - alpha))) for alpha in common]
    idx_b = [int(np.argmin(np.abs(b.alphas - alpha))) for alpha in common]
    deltas: Dict[str, MetricDelta] = {}
    for name in sorted(set(a.series) & set(b.series)):
        deltas[name] = MetricDelta(
            metric=name,
            alphas=common,
            a=np.asarray(a.series[name])[idx_a],
            b=np.asarray(b.series[name])[idx_b],
        )
    return SweepComparison(label_a=label_a, label_b=label_b, deltas=deltas)
