"""Calibration measurements: does a synthetic repository match the paper?

The reproduction substitutes a generated dependency DAG for the real SFT
metadata (DESIGN.md §2).  That substitution is only sound if the generated
tree matches the statistics the paper's results depend on.  This module
measures them:

- **closure amplification** — Figure 3's ratio of image package count to
  selection size (paper: ≈5× for selections under 100 packages, fading
  with size);
- **core concentration** — the share of dependency edges landing on the
  most-depended-upon packages ("a number of core components that are
  transitive dependencies of a large number of packages");
- **inter-spec distance profile** — the distribution of Jaccard distances
  between independent workload specs, which determines where on the α axis
  merging turns on.

``calibration_report`` bundles them; the test suite asserts the shipped
SFT repository stays within the calibrated bands, so a regression in the
generator is caught as a test failure rather than as silently wrong
figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.similarity import jaccard_distance
from repro.htc.workload import DependencyWorkload
from repro.packages.repository import Repository
from repro.util.rng import spawn

__all__ = [
    "closure_amplification",
    "core_concentration",
    "spec_distance_profile",
    "CalibrationReport",
    "calibration_report",
]


def closure_amplification(
    repository: Repository,
    selection_size: int,
    trials: int = 30,
    seed: Optional[int] = 0,
) -> float:
    """Median ratio |closure(S)| / |S| over random selections of one size."""
    if selection_size < 1 or selection_size > len(repository):
        raise ValueError("selection_size out of range")
    rng = spawn(seed, "calib-amp", selection_size)
    ids = repository.ids
    ratios = []
    for _ in range(trials):
        picks = rng.choice(len(ids), size=selection_size, replace=False)
        selection = [ids[int(i)] for i in picks]
        ratios.append(len(repository.closure(selection)) / selection_size)
    return float(np.median(ratios))


def core_concentration(
    repository: Repository, top_fraction: float = 0.02
) -> float:
    """Share of direct dependency edges pointing at the top packages.

    With ``top_fraction=0.02``, a value of 0.5 means 2% of packages receive
    half of all dependency edges — the hierarchical concentration the
    merging strategy exploits.  A flat random DAG scores near
    ``top_fraction``.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    index = repository.dependents_index()
    counts = np.sort(
        np.array([len(v) for v in index.values()], dtype=np.int64)
    )[::-1]
    total = counts.sum()
    if total == 0:
        return 0.0
    top_n = max(1, int(round(len(counts) * top_fraction)))
    return float(counts[:top_n].sum() / total)


def spec_distance_profile(
    repository: Repository,
    max_selection: int = 100,
    n_specs: int = 40,
    seed: Optional[int] = 0,
) -> Dict[str, float]:
    """Percentiles of pairwise Jaccard distance between workload specs.

    The merge threshold α only matters relative to this profile: merging
    at α begins once a meaningful fraction of spec pairs sits below it.
    """
    workload = DependencyWorkload(repository, max_selection)
    rng = spawn(seed, "calib-dist")
    specs = workload.sample_specs(rng, n_specs)
    distances = [
        jaccard_distance(specs[i], specs[j])
        for i in range(len(specs))
        for j in range(i + 1, len(specs))
    ]
    arr = np.asarray(distances)
    return {
        "p05": float(np.percentile(arr, 5)),
        "p25": float(np.percentile(arr, 25)),
        "p50": float(np.percentile(arr, 50)),
        "p75": float(np.percentile(arr, 75)),
        "p95": float(np.percentile(arr, 95)),
    }


@dataclass(frozen=True)
class CalibrationReport:
    """Bundle of calibration measurements for one repository."""

    packages: int
    total_bytes: int
    amplification_small: float   # at ~1% of the repo
    amplification_large: float   # at ~10% of the repo
    core_concentration: float
    distance_profile: Dict[str, float]

    def lines(self) -> List[str]:
        """Human-readable report lines."""
        return [
            f"packages: {self.packages}",
            f"total bytes: {self.total_bytes}",
            f"closure amplification (small/large selections): "
            f"{self.amplification_small:.2f}x / {self.amplification_large:.2f}x",
            f"core concentration (top 2% of packages): "
            f"{100 * self.core_concentration:.1f}% of dependency edges",
            "inter-spec Jaccard distance percentiles: "
            + ", ".join(f"{k}={v:.3f}" for k, v in self.distance_profile.items()),
        ]


def calibration_report(
    repository: Repository, seed: Optional[int] = 0
) -> CalibrationReport:
    """Measure everything; selection sizes scale with the repository."""
    small = max(2, len(repository) // 100)
    large = max(small + 1, len(repository) // 10)
    return CalibrationReport(
        packages=len(repository),
        total_bytes=repository.total_size,
        amplification_small=closure_amplification(repository, small, seed=seed),
        amplification_large=closure_amplification(repository, large, seed=seed),
        core_concentration=core_concentration(repository),
        distance_profile=spec_distance_profile(
            repository, max_selection=small * 2, seed=seed
        ),
    )
