"""Experiment machinery: parameter sweeps, efficiency metrics, reports.

- :mod:`repro.analysis.sweep` — repeated simulations over α grids and
  configuration variants, aggregated by median (the paper's methodology:
  *"we repeated the simulation 20 times and reported the median behavior"*).
- :mod:`repro.analysis.efficiency` — the cache/container efficiency metrics
  and operational-zone detection of §VI.
- :mod:`repro.analysis.report` — text tables, ASCII figures, and JSON
  persistence for sweep results.
"""

from repro.analysis.calibration import (
    CalibrationReport,
    calibration_report,
    closure_amplification,
    core_concentration,
    spec_distance_profile,
)
from repro.analysis.compare import MetricDelta, SweepComparison, compare_sweeps
from repro.analysis.efficiency import (
    OperationalZone,
    cache_efficiency,
    container_efficiency,
    find_operational_zone,
)
from repro.analysis.sweep import SweepResult, alpha_sweep, run_repetitions

__all__ = [
    "CalibrationReport",
    "calibration_report",
    "closure_amplification",
    "core_concentration",
    "spec_distance_profile",
    "MetricDelta",
    "SweepComparison",
    "compare_sweeps",
    "cache_efficiency",
    "container_efficiency",
    "OperationalZone",
    "find_operational_zone",
    "SweepResult",
    "alpha_sweep",
    "run_repetitions",
]
