"""Rendering sweep results as paper-style tables, ASCII figures, and JSON."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from repro.analysis.sweep import SweepResult
from repro.core.events import CacheEvent, EventKind
from repro.util.asciiplot import Series, line_plot
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = [
    "sweep_table",
    "sweep_plot",
    "timeline_plot",
    "timeline_from_events",
    "alert_timeline",
    "alert_timeline_lines",
    "save_results_json",
    "percent",
]

_BYTE_METRICS = {
    "cached_bytes",
    "unique_bytes",
    "bytes_written",
    "requested_bytes",
}
_PERCENT_METRICS = {"cache_efficiency", "container_efficiency", "hit_rate"}


def percent(value: float) -> str:
    """Format a [0, 1] ratio as a percentage string."""
    return f"{100.0 * value:.1f}%"


def _format_metric(name: str, value: float) -> str:
    if name in _BYTE_METRICS:
        return format_bytes(value)
    if name in _PERCENT_METRICS:
        return percent(value)
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3g}"


def sweep_table(sweep: SweepResult, metrics: Sequence[str]) -> str:
    """One row per α, one column per requested metric."""
    header = ["alpha"] + list(metrics)
    rows = []
    for i, alpha in enumerate(sweep.alphas):
        row = [f"{alpha:.2f}"]
        for name in metrics:
            row.append(_format_metric(name, float(sweep.metric(name)[i])))
        rows.append(row)
    return render_table(rows, header=header)


def sweep_plot(
    sweeps: "Union[SweepResult, Sequence[SweepResult]]",
    metric: str,
    title: Optional[str] = None,
    scale: float = 1.0,
    ylabel: Optional[str] = None,
) -> str:
    """ASCII plot of one metric vs α for one or several sweeps."""
    if isinstance(sweeps, SweepResult):
        sweeps = [sweeps]
    series = [
        Series(
            name=s.label or metric,
            xs=s.alphas,
            ys=np.asarray(s.metric(metric)) * scale,
        )
        for s in sweeps
    ]
    return line_plot(
        series,
        title=title or f"{metric} vs alpha",
        xlabel="alpha",
        ylabel=ylabel or metric,
    )


def timeline_plot(
    timeline: Dict[str, np.ndarray],
    fields: Sequence[str],
    title: str,
    scale: float = 1.0,
) -> str:
    """ASCII plot of cumulative per-request series (Figure 5 style)."""
    n = len(next(iter(timeline.values()))) if timeline else 0
    xs = np.arange(1, n + 1)
    series = [
        Series(name=name, xs=xs, ys=np.asarray(timeline[name]) * scale)
        for name in fields
        if name in timeline
    ]
    return line_plot(series, title=title, xlabel="requests")


def timeline_from_events(
    events: "Union[Iterable[CacheEvent], str, Path]",
) -> Dict[str, np.ndarray]:
    """Reconstruct a Figure-5 style timeline from a ``CacheEvent`` log.

    Accepts an in-memory event sequence (``cache.events``) or the path of
    a JSONL stream written by :func:`repro.obs.write_event_stream`, so
    :func:`timeline_plot` can consume either the simulator's recorded
    timeline or a persisted event log interchangeably.  One sample is
    emitted per *decision* event (hit/merge/insert — one per request),
    after folding in any eviction events the request triggered:
    cumulative ``hits``/``inserts``/``merges``/``deletes`` (plus the
    per-reason ``deletes_capacity``/``deletes_idle`` breakdown),
    ``cached_bytes`` tracked from per-image sizes, ``bytes_written``, and
    ``requested_bytes``.  ``unique_bytes`` cannot be reconstructed — the
    log does not record package overlap between images — so that series
    is absent here (plots simply skip it).
    """
    if isinstance(events, (str, Path)):
        from repro.obs.stream import read_event_stream

        events = read_event_stream(events)
    fields = (
        "hits", "inserts", "merges", "deletes",
        "deletes_capacity", "deletes_idle",
        "cached_bytes", "bytes_written", "requested_bytes",
    )
    counts = {name: 0 for name in fields}
    sizes: Dict[str, int] = {}
    series: Dict[str, list] = {name: [] for name in fields}
    pending_decision = False

    def sample() -> None:
        counts["cached_bytes"] = sum(sizes.values())
        for name in fields:
            series[name].append(counts[name])

    for event in events:
        if event.kind is EventKind.DELETE:
            counts["deletes"] += 1
            if event.reason == "idle":
                counts["deletes_idle"] += 1
            else:
                counts["deletes_capacity"] += 1
            sizes.pop(event.image_id, None)
            continue
        # A decision event closes the previous request's sample window
        # (its evictions are emitted after it, before the next decision).
        if pending_decision:
            sample()
        pending_decision = True
        counts["requested_bytes"] += event.requested_bytes or 0
        sizes[event.image_id] = event.image_bytes
        if event.kind is EventKind.HIT:
            counts["hits"] += 1
        elif event.kind is EventKind.MERGE:
            counts["merges"] += 1
            counts["bytes_written"] += event.bytes_written
        else:
            counts["inserts"] += 1
            counts["bytes_written"] += event.bytes_written
    if pending_decision:
        sample()
    return {
        name: np.asarray(values, dtype=np.int64)
        for name, values in series.items()
    }


def alert_timeline(
    timeline: Dict[str, np.ndarray],
    rules=None,
    window: Optional[int] = None,
    capacity: Optional[int] = None,
):
    """Evaluate alert rules over a recorded simulation timeline.

    Replays a simulator timeline (the cumulative per-request series
    ``SimulationResult.timeline`` records) through an
    :class:`~repro.obs.slo.SloTracker` and
    :class:`~repro.obs.alerts.AlertEngine`, returning the transitions
    the run *would have* raised had alerts been live — the Figure 5
    narrative uses this to place the paper's eviction onset on the alert
    time axis.  Unlike event-stream replays, the timeline carries
    ``unique_bytes``, so ``cache_efficiency`` rules evaluate exactly;
    ``container_efficiency`` and ``latency_*`` are not reconstructible
    and read ``nan`` (never breaching); ``images`` reads 0.  Defaults:
    :data:`repro.obs.alerts.DEFAULT_RULES` and
    :data:`repro.obs.slo.DEFAULT_WINDOW`.
    """
    from repro.obs.alerts import AlertEngine, DEFAULT_RULES
    from repro.obs.slo import DEFAULT_WINDOW, SloTracker

    engine = AlertEngine(DEFAULT_RULES if rules is None else rules)
    slo = SloTracker(window=DEFAULT_WINDOW if window is None else window)
    if capacity is not None:
        slo.configure(capacity, float("nan"))
    n = len(next(iter(timeline.values()))) if timeline else 0
    cumulative = ("hits", "merges", "inserts", "deletes",
                  "bytes_written", "requested_bytes")
    prev = {name: 0 for name in cumulative}
    unique = timeline.get("unique_bytes")
    cached = timeline.get("cached_bytes")
    for i in range(n):
        delta = {
            name: int(timeline[name][i]) - prev[name]
            for name in cumulative
            if name in timeline
        }
        for name, value in delta.items():
            prev[name] += value
        if delta.get("hits"):
            action = "hit"
        elif delta.get("merges"):
            action = "merge"
        else:
            action = "insert"
        slo.on_request(
            action=action,
            requested_bytes=delta.get("requested_bytes", 0),
            bytes_written=delta.get("bytes_written", 0),
            used_bytes=0,
            evictions=delta.get("deletes", 0),
            latency_s=None,
            cached_bytes=int(cached[i]) if cached is not None else 0,
            unique_bytes=int(unique[i]) if unique is not None else None,
            images=0,
        )
        engine.evaluate(slo.values(), i)
    return engine.transitions


def alert_timeline_lines(transitions, rules=None) -> "list[str]":
    """Render an alert-transition list as report narrative lines."""
    from repro.obs.alerts import DEFAULT_RULES

    rules = DEFAULT_RULES if rules is None else rules
    lines = ["alert timeline (rules: "
             + ", ".join(f"{r.name}: {r.expr} for {r.for_requests}"
                         for r in rules) + ")"]
    if not transitions:
        lines.append("  quiet — no rule ever left its inactive state")
        return lines
    for t in transitions:
        value = "" if np.isnan(t.value) else f"  (value {t.value:.3g})"
        lines.append(
            f"  request {t.request_index:>6}  {t.rule:<24} "
            f"-> {t.state}{value}"
        )
    return lines


def save_results_json(
    path: "Union[str, Path]",
    payload: dict,
) -> Path:
    """Persist an experiment's structured results (numpy-safe)."""

    def default(obj):
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, SweepResult):
            return obj.to_jsonable()
        if isinstance(obj, frozenset):
            return sorted(obj)
        raise TypeError(f"not JSON-serialisable: {type(obj)!r}")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=default))
    return path
