"""Crash/torn-write injection for the durable-state code paths.

The persistence layer must uphold one guarantee: *whatever instant the
process dies, the next invocation recovers to exactly the pre-crash
cache state*.  Proving that requires dying at every instant that
matters.  This module enumerates those instants (:data:`CRASH_SITES`)
and provides a context manager (:class:`CrashPoint`) that makes the
corresponding :func:`checkpoint` call raise :class:`SimulatedCrash` —
optionally after truncating the bytes written so far, simulating a torn
write that a real power loss can leave behind before fsync returned.

Checkpoints cost one global ``is None`` test when disarmed, so the
production call sites keep them unconditionally.
"""

from __future__ import annotations

import os
from typing import IO, Optional

__all__ = ["CRASH_SITES", "SimulatedCrash", "CrashPoint", "checkpoint"]

#: Every instant at which the persistence layer can be killed.  The
#: first component names the operation (journal append, journal
#: compaction, snapshot save); the second names the moment within it.
CRASH_SITES = (
    "journal:append",    # before the entry's bytes reach the file
    "journal:torn",      # entry written but not fsynced (may tear)
    "journal:synced",    # entry durable, but the operation not yet applied
    "compact:write",     # before the compacted journal tmp is written
    "compact:torn",      # compacted tmp written but not fsynced (may tear)
    "compact:renamed",   # compacted journal renamed, directory not fsynced
    "state:write",       # before the snapshot tmp is written
    "state:torn",        # snapshot tmp written but not fsynced (may tear)
    "state:synced",      # snapshot tmp durable, rename not yet performed
    "state:renamed",     # snapshot renamed over the old one, dir not fsynced
)

#: Sites where a file handle is mid-write, so torn-write simulation applies.
TORN_SITES = ("journal:torn", "compact:torn", "state:torn")


class SimulatedCrash(RuntimeError):
    """Stands in for the process dying at an armed crash site."""


_active: Optional["CrashPoint"] = None


class CrashPoint:
    """Arm a simulated crash at one persistence call site.

    Args:
        site: one of :data:`CRASH_SITES`.
        hits: crash on the Nth time the site is reached (1 = first).
        torn: optional fraction in ``(0, 1)`` of the in-flight bytes to
            leave behind before crashing — only meaningful at the
            ``*:torn`` sites, where a file is written but not yet
            fsynced.  ``None`` leaves the full write in place (the
            "lucky" crash where the page cache happened to be flushed).

    Use as a context manager::

        with CrashPoint("state:synced") as cp:
            ...  # persistence code raises SimulatedCrash at the site
        assert cp.fired
    """

    def __init__(self, site: str, hits: int = 1, torn: Optional[float] = None):
        if site not in CRASH_SITES:
            raise ValueError(f"unknown crash site {site!r}")
        if hits < 1:
            raise ValueError("hits must be >= 1")
        if torn is not None and not 0.0 < torn < 1.0:
            raise ValueError("torn must be a fraction in (0, 1)")
        if torn is not None and site not in TORN_SITES:
            raise ValueError(f"site {site!r} has no in-flight write to tear")
        self.site = site
        self.hits = hits
        self.torn = torn
        self.fired = False
        self._count = 0

    def __enter__(self) -> "CrashPoint":
        """Install this crash point as the process-wide active one."""
        global _active
        if _active is not None:
            raise RuntimeError("another CrashPoint is already armed")
        _active = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Disarm the crash point."""
        global _active
        _active = None

    def _trip(self, fh: Optional[IO[str]], start: int) -> None:
        if self.fired:
            return
        self._count += 1
        if self._count < self.hits:
            return
        if self.torn is not None and fh is not None:
            fh.flush()
            fileno = fh.fileno()
            size = os.fstat(fileno).st_size
            keep = start + int((size - start) * self.torn)
            os.ftruncate(fileno, keep)
            os.fsync(fileno)  # the torn prefix is what "survives" the crash
        self.fired = True
        raise SimulatedCrash(self.site)


def checkpoint(site: str, fh: Optional[IO[str]] = None, start: int = 0) -> None:
    """Declare a crash site; no-op unless a matching CrashPoint is armed.

    Args:
        site: one of :data:`CRASH_SITES`.
        fh: the file object mid-write, when the site sits between a write
            and its fsync (enables torn-write simulation).
        start: file offset where the in-flight write began — bytes before
            it are already durable and are never torn away.
    """
    if _active is not None and _active.site == site:
        _active._trip(fh, start)
