"""Test-support subsystem: fault injection for the persistence layer.

Production code in :mod:`repro.core.persistence` and
:mod:`repro.core.journal` calls :func:`repro.testing.faults.checkpoint`
at every point where a real process could die (before/after a write,
between fsync and rename, …).  In normal operation those calls are
no-ops; property tests arm a :class:`~repro.testing.faults.CrashPoint`
to simulate a crash — optionally with a torn (partially persisted)
write — at one exact site, then assert that recovery reproduces the
uninterrupted run bit-for-bit.

- :mod:`repro.testing.faults` — crash sites, :class:`CrashPoint`,
  :class:`SimulatedCrash`, torn-write simulation.
- :mod:`repro.testing.harness` — a job-wrapper driver that runs request
  streams through the durable store, crashing and recovering on demand.
"""

from repro.testing.faults import (
    CRASH_SITES,
    CrashPoint,
    SimulatedCrash,
    checkpoint,
)

# NOTE: repro.testing.harness is intentionally not imported here — the
# persistence layer imports this package for its checkpoints, and the
# harness imports the persistence layer back; import it directly as
# ``from repro.testing.harness import WrapperHarness``.

__all__ = [
    "CRASH_SITES",
    "CrashPoint",
    "SimulatedCrash",
    "checkpoint",
]
