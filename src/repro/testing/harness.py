"""Job-wrapper driver for crash-recovery property tests.

:class:`WrapperHarness` runs a request stream the way ``repro-landlord
submit`` does — every request is one full wrapper invocation against the
durable store (recover, journal, apply, snapshot) — while letting tests
kill the "process" at any persistence call site and then carry on, as a
site's real submission pipeline would after a node reboot.

The central property the harness exposes: for any crash site and crash
instant, *the completed stream's decisions and statistics are
bit-identical to an uninterrupted run*.  A request is either durably
journalled (and recovery replays it, reproducing its exact decision) or
wholly lost (and the driver re-submits it) — never half-applied.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cache import CacheDecision, LandlordCache
from repro.core.journal import JournaledState
from repro.core.persistence import StateNotFound
from repro.testing.faults import CrashPoint, SimulatedCrash

__all__ = ["WrapperHarness", "decision_key"]

PathLike = Union[str, Path]


def decision_key(decision: CacheDecision) -> tuple:
    """Collapse a :class:`CacheDecision` to a comparable value tuple."""
    return (
        decision.action.value,
        decision.image.id,
        decision.image.size,
        decision.requested_bytes,
        decision.bytes_added,
        tuple(decision.evicted),
    )


class WrapperHarness:
    """Drive submit-style invocations against one durable state directory.

    Each :meth:`submit` is a complete, independent wrapper run: recover
    the cache from disk (snapshot + journal tail), journal the request,
    apply it, and snapshot when due — nothing is shared in memory between
    invocations, exactly like consecutive CLI runs.

    Args:
        directory: where the state and journal files live.
        package_size: size oracle for :class:`LandlordCache`.
        capacity / alpha: cache configuration on first initialisation.
        snapshot_every: forwarded to :class:`JournaledState`.
        use_journal: forwarded to :class:`JournaledState`.
        cache_kwargs: remaining policy knobs for the cache.
    """

    def __init__(
        self,
        directory: PathLike,
        package_size: Callable[[str], int],
        capacity: int,
        alpha: float,
        snapshot_every: int = 1,
        use_journal: bool = True,
        **cache_kwargs: object,
    ):
        self._directory = Path(directory)
        self._package_size = package_size
        self._capacity = capacity
        self._alpha = alpha
        self._snapshot_every = snapshot_every
        self._use_journal = use_journal
        self._cache_kwargs = cache_kwargs
        #: decisions by 0-based request index, filled by submits and by
        #: journal replay during recovery (replay of an already-recorded
        #: request must agree — asserted in :meth:`_record`).
        self.decisions: Dict[int, tuple] = {}

    def _store(self) -> JournaledState:
        return JournaledState(
            self._directory / "state.json",
            snapshot_every=self._snapshot_every,
            use_journal=self._use_journal,
        )

    def _fresh_cache(self) -> LandlordCache:
        return LandlordCache(
            self._capacity, self._alpha, self._package_size,
            **self._cache_kwargs,  # type: ignore[arg-type]
        )

    def _record(self, index: int, decision: CacheDecision) -> None:
        key = decision_key(decision)
        known = self.decisions.get(index)
        if known is not None and known != key:
            raise AssertionError(
                f"replayed decision for request {index} diverged: "
                f"{known} != {key}"
            )
        self.decisions[index] = key

    def _recover(self) -> Tuple[LandlordCache, dict, JournaledState]:
        store = self._store()
        try:
            # journal seq N is request index N-1: the harness journals
            # requests only, and initialise() resets numbering to 1.
            # Decisions must be captured via on_replay, at decision time
            # — a decision's image object keeps mutating as later tail
            # entries merge into it.
            cache, metadata, _replayed = store.load(
                self._package_size,
                on_replay=lambda entry, result: self._record(
                    entry.seq - 1, result
                ),
                **self._cache_kwargs,
            )
        except StateNotFound:
            cache = self._fresh_cache()
            metadata = {}
            store.initialise(cache, metadata)
        return cache, metadata, store

    def submit(self, packages: Sequence[str]) -> CacheDecision:
        """One wrapper invocation: recover, journal, apply, snapshot.

        The decision is recorded via the store's ``on_result`` hook —
        i.e. delivered the instant it is computed, before the snapshot
        and compaction housekeeping — so a crash during housekeeping
        never strands a decision the snapshot already covers.
        """
        cache, metadata, store = self._recover()
        index = cache.stats.requests
        return store.apply(
            cache, metadata, "request",
            on_result=lambda _entry, result: self._record(index, result),
            packages=sorted(packages),
        )

    def processed_requests(self) -> int:
        """How many requests the durable state currently accounts for."""
        try:
            cache, _metadata, _replayed = self._store().load(
                self._package_size, **self._cache_kwargs
            )
        except StateNotFound:
            return 0
        return cache.stats.requests

    def run(
        self,
        stream: Sequence[Sequence[str]],
        crash_site: Optional[str] = None,
        crash_at: int = 0,
        torn: Optional[float] = None,
    ) -> List[tuple]:
        """Run a whole stream, optionally crashing once and recovering.

        With ``crash_site`` set, the crash point is armed from request
        ``crash_at`` onward until it fires (a site may not be reached by
        every submit — e.g. snapshot sites between periodic snapshots);
        the harness then resumes exactly where the durable state says it
        should, re-submitting a lost request or skipping a journalled
        one.  Returns the decision keys for the full stream, in order.

        The stream is positioned at the durable request count, not at 0
        — like the real driver, which never re-submits work an earlier
        (possibly crashed) run already completed.
        """
        armed: Optional[CrashPoint] = None
        fired = False
        index = self.processed_requests()
        while index < len(stream):
            arm_now = (
                crash_site is not None and not fired and index >= crash_at
            )
            try:
                if arm_now:
                    armed = CrashPoint(crash_site, torn=torn)
                    with armed:
                        self.submit(stream[index])
                    fired = armed.fired
                else:
                    self.submit(stream[index])
            except SimulatedCrash:
                fired = True
                # next loop iteration re-recovers from disk; resume from
                # however many requests actually survived the crash
                index = self.processed_requests()
                continue
            index += 1
        # a final clean recovery folds any journal tail into self.decisions
        self._recover()
        return [self.decisions[i] for i in range(len(stream))]
