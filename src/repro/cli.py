"""Command-line interface: ``repro-landlord <command>`` / ``python -m repro``.

Commands:

- ``fig1`` … ``fig8`` — regenerate each paper figure/table;
- ``ablations`` — the design-choice ablation studies;
- ``all`` — run every figure at the chosen scale;
- ``sweep`` — a standalone α sweep with explicit grid and worker count;
- ``bench`` — time a sweep serially vs in parallel and save the numbers;
- ``trace`` — two modes: generate a workload trace file for external
  replay, or (with ``--url``) render a running daemon's distributed
  request traces as per-stage ASCII waterfalls;
- ``replay`` — run a saved trace through a configured cache;
- ``submit`` — the paper's job-wrapper deployment: prepare one job's
  container against a persistent on-disk cache state (write-ahead
  journalled; crash-safe), or forward the spec to a running daemon
  with ``--remote URL``;
- ``serve`` — run LANDLORD as a concurrent multi-client daemon: a
  loopback HTTP (and optional UNIX-socket) endpoint accepting JSON
  spec submissions from many clients through one journalled cache,
  with batching, admission control, and the full observability
  surface on the same port;
- ``cache-status`` — inspect a persistent cache state (replays any
  journal tail left by a crashed wrapper; ``--metrics-out`` adds the
  journal fsync histogram and eviction breakdown);
- ``recover`` — explicit crash recovery: fold the journal tail into a
  fresh snapshot and compact the journal;
- ``explain`` — why did a request hit/merge/insert?  Renders the
  decision trace a ``submit --trace`` invocation recorded;
- ``metrics`` — render a saved metrics registry as a table, Prometheus
  text exposition format, or JSON;
- ``top`` — the live dashboard: replay a recorded ``--events-out``
  stream frame by frame, or attach to a running ``submit --serve``
  endpoint and poll its ``/statusz``;
- ``calibrate`` — measure a repository's structural statistics.

Operational telemetry: ``submit --serve PORT`` keeps the wrapper alive
after the request and exposes ``/metrics`` (Prometheus), ``/healthz``,
``/statusz`` and ``/traces/<n>`` until SIGTERM; ``--alert-rules FILE``
(on ``submit`` and ``replay``) evaluates declarative SLO alert rules
and makes the command exit non-zero when any rule fired — the CI gate.

Every figure command accepts ``--scale quick|paper``, ``--seed`` and
``--json PATH``; sweep-shaped ones also take ``--workers N`` (default:
all CPUs; ``REPRO_WORKERS`` overrides).  See
``repro-landlord <command> --help``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import (
    ablations,
    adaptive_study,
    baselines,
    federation_study,
    tenancy_overhead,
    fig1_layering,
    fig2_benchmarks,
    fig3_image_size,
    fig4_cache_behavior,
    fig5_single_run,
    fig6_sensitivity,
    fig7_dependencies,
    fig8_limits,
)

__all__ = ["main"]

_FIGURES = {
    "fig1": fig1_layering,
    "fig2": fig2_benchmarks,
    "fig3": fig3_image_size,
    "fig4": fig4_cache_behavior,
    "fig5": fig5_single_run,
    "fig6": fig6_sensitivity,
    "fig7": fig7_dependencies,
    "fig8": fig8_limits,
    "ablations": ablations,
    "baselines": baselines,
    "tenancy": tenancy_overhead,
    "federation": federation_study,
    "adaptive": adaptive_study,
}


def _cmd_sweep(argv: Sequence[str]) -> int:
    import os

    from repro.analysis.report import sweep_table
    from repro.analysis.sweep import alpha_sweep, default_alphas
    from repro.core.engine import ENGINES
    from repro.experiments.common import base_config, get_scale
    from repro.parallel import resolve_workers

    parser = argparse.ArgumentParser(
        prog="repro-landlord sweep",
        description="Run one alpha sweep with an explicit grid and worker "
        "count (the building block behind fig4/fig6/fig7/fig8).",
    )
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"],
                        default=None)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--repetitions", type=int, default=None,
                        help="simulations per grid point (default: scale's)")
    parser.add_argument("--alpha", nargs=3, type=float, default=None,
                        metavar=("LO", "HI", "STEP"),
                        help="grid bounds and step (default: scale's grid)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes (default: all CPUs; "
                        "REPRO_WORKERS overrides; 1 = serial)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also save the sweep as JSON")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="collect per-run cache metrics and save the "
                        "aggregated registry (.json = JSON snapshot, "
                        "anything else = Prometheus text format)")
    parser.add_argument("--engine", choices=ENGINES, default="vectorized",
                        help="cache decision engine (bit-identical results; "
                        "default: %(default)s)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="serve live fleet telemetry on PORT while the "
                        "sweep runs (0 = ephemeral): workers push per-cell "
                        "registry snapshots and one /metrics scrape shows "
                        "per-worker series plus the aggregate; the endpoint "
                        "stays up after the sweep until SIGTERM")
    parser.add_argument("--port-file", metavar="FILE", default=None,
                        help="with --serve, write the bound port to FILE "
                        "once listening (lets scripts use --serve 0)")
    args = parser.parse_args(argv)
    if args.port_file and args.serve is None:
        parser.error("--port-file requires --serve")
    scale = get_scale(args.scale)
    if args.alpha is None:
        alphas = scale.alphas()
    else:
        lo, hi, step = args.alpha
        if not 0 <= lo <= hi <= 1:
            parser.error(f"--alpha bounds must satisfy 0 <= LO <= HI <= 1, "
                         f"got {lo} {hi}")
        if step <= 0:
            parser.error(f"--alpha STEP must be positive, got {step}")
        alphas = default_alphas(step=step, lo=lo, hi=hi)
    repetitions = args.repetitions or scale.repetitions
    try:
        workers = resolve_workers(args.workers, default=os.cpu_count() or 1)
    except ValueError as exc:
        parser.error(str(exc))
    registry = None
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    total_cells = int(alphas.size) * repetitions
    progress_state = {"done": 0, "total": total_cells, "last": ""}

    def sweep_progress(message: str) -> None:
        progress_state["done"] += 1
        progress_state["last"] = message

    collector = None
    if args.serve is not None:
        from repro.obs import TelemetryAggregator, TelemetryCollector

        collector = TelemetryCollector(
            TelemetryAggregator(expected_cells=total_cells),
            port=args.serve,
            status_extra=lambda: {"sweep": dict(progress_state)},
        )
    try:
        if collector is not None:
            port = collector.start()
            if args.port_file:
                _write_port_file(args.port_file, port)
            print(f"telemetry on http://127.0.0.1:{port} "
                  "(/metrics /statusz; workers POST /telemetry)")
        sweep = alpha_sweep(
            base_config(scale, seed=args.seed, engine=args.engine),
            alphas=alphas,
            repetitions=repetitions,
            label="sweep",
            workers=workers,
            metrics=registry,
            telemetry=collector.url if collector is not None else None,
            progress=sweep_progress if collector is not None else None,
        )
        if collector is not None:
            collector.aggregator.mark_complete()
        print(f"alpha sweep: {alphas.size} points x {repetitions} "
              f"repetitions ({scale.name} scale, {workers} workers)")
        print(sweep_table(
            sweep,
            ["cache_efficiency", "container_efficiency",
             "write_amplification", "merges"],
        ))
        if args.json:
            import json as _json

            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(sweep.to_jsonable(), fh, indent=2)
                fh.write("\n")
            print(f"\nresults saved to {args.json}")
        if registry is not None:
            from repro.obs import save_registry

            save_registry(registry, args.metrics_out)
            print(f"metrics saved to {args.metrics_out}")
        if collector is not None:
            _wait_for_shutdown_signal(
                f"sweep done; telemetry still on "
                f"http://127.0.0.1:{collector.port} (SIGTERM to stop)"
            )
    finally:
        if collector is not None:
            collector.stop()
            if args.port_file:
                _remove_port_file(args.port_file)
    return 0


def _wait_for_shutdown_signal(banner: str) -> None:
    """Print ``banner`` and block until SIGTERM/SIGINT (handlers restored).

    The tail of ``sweep --serve``: results are already printed, but the
    telemetry endpoint keeps answering scrapes until the caller says
    stop — mirroring ``submit --serve``'s signal discipline.
    """
    import signal
    import threading

    stop = threading.Event()
    print(banner)
    previous = {
        sig: signal.signal(sig, lambda *_: stop.set())
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _cmd_bench(argv: Sequence[str]) -> int:
    import json as _json
    import os
    import time

    import numpy as np

    from repro.analysis.sweep import alpha_sweep
    from repro.experiments.common import base_config, get_scale
    from repro.parallel import RepositorySpec, SimulationPool, resolve_workers

    parser = argparse.ArgumentParser(
        prog="repro-landlord bench",
        description="Time one alpha sweep serially and in parallel, verify "
        "the two results are bit-identical, and save the numbers.",
    )
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"],
                        default="quick")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="parallel worker count (default: all CPUs; "
                        "REPRO_WORKERS overrides)")
    parser.add_argument("--output", default="BENCH_sweep.json",
                        metavar="PATH",
                        help="JSON file to write (default: %(default)s)")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    try:
        workers = resolve_workers(args.workers, default=os.cpu_count() or 1)
    except ValueError as exc:
        parser.error(str(exc))
    config = base_config(scale, seed=args.seed)
    alphas = scale.alphas()
    repetitions = scale.repetitions

    start = time.perf_counter()
    serial = alpha_sweep(config, alphas=alphas, repetitions=repetitions,
                         label="bench", workers=1)
    serial_seconds = time.perf_counter() - start
    # One explicit pool for the whole parallel sweep: worker warm-up is
    # paid once (the parent pre-warms the repository and forks it into
    # workers, or publishes the closure matrix via shared memory on
    # spawn platforms) and amortised across every sweep cell.
    start = time.perf_counter()
    with SimulationPool(RepositorySpec.from_config(config), workers) as pool:
        shared_universe = pool.shared_universe
        parallel = alpha_sweep(config, alphas=alphas, repetitions=repetitions,
                               label="bench", pool=pool)
    parallel_seconds = time.perf_counter() - start

    identical = (
        np.array_equal(serial.alphas, parallel.alphas)
        and serial.raw.keys() == parallel.raw.keys()
        and all(
            np.array_equal(serial.raw[name], parallel.raw[name])
            for name in serial.raw
        )
    )
    speedup = (
        round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds > 0 else None
    )
    # A speedup expectation only makes sense when real parallelism is
    # available: on a single-CPU host (or workers > CPUs) process
    # fan-out adds pickling/IPC cost with no cores to recoup it on, so
    # the payload flags the measurement as degraded instead of letting
    # a sub-1x "speedup" read as a regression.
    cpu_count = os.cpu_count() or 1
    degraded = cpu_count < workers
    payload = {
        "scale": scale.name,
        "seed": args.seed,
        "cells": int(alphas.size * repetitions),
        "workers": workers,
        "cpu_count": cpu_count,
        "degraded_single_cpu": degraded,
        "shared_universe": bool(shared_universe),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": speedup,
        "identical": bool(identical),
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        _json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"{payload['cells']} cells: serial {serial_seconds:.2f}s, "
          f"parallel {parallel_seconds:.2f}s with {workers} workers "
          f"(speedup {speedup}x, identical={identical})")
    if degraded:
        print(f"note: only {cpu_count} CPU(s) for {workers} workers — "
              "no speedup expected; measurement flagged degraded")
    print(f"saved to {args.output}")
    return 0 if identical else 1


def _cmd_trace(argv: Sequence[str]) -> int:
    # Dual-mode command: with --url it is the distributed-trace
    # waterfall viewer against a running daemon; without, the original
    # workload-trace generator (kept for scripts and tests).
    if "--url" in argv:
        return _cmd_trace_waterfall(argv)
    from repro.experiments.common import get_scale
    from repro.htc.simulator import SimulationConfig, make_workload
    from repro.htc.trace import save_trace
    from repro.htc.workload import build_stream, jobs_from_specs
    from repro.packages.sft import build_experiment_repository
    from repro.util.rng import spawn

    parser = argparse.ArgumentParser(prog="repro-landlord trace")
    parser.add_argument("output", help="trace file to write (JSON lines)")
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"], default=None)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--scheme", choices=["deps", "random", "drift"], default="deps")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    config = SimulationConfig(
        n_unique=scale.n_unique,
        repeats=scale.repeats,
        scheme=args.scheme,
        max_selection=scale.max_selection,
        n_packages=scale.n_packages,
        repo_total_size=scale.repo_total_size,
        seed=args.seed,
    )
    repo = build_experiment_repository(
        "sft", seed=args.seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    workload = make_workload(config, repo)
    rng = spawn(args.seed, "workload", args.scheme, config.n_unique)
    stream = build_stream(workload, rng, config.n_unique, config.repeats)
    count = save_trace(args.output, jobs_from_specs(stream))
    print(f"wrote {count} requests to {args.output}")
    return 0


def _cmd_trace_waterfall(argv: Sequence[str]) -> int:
    """``repro-landlord trace --url <daemon>``: per-stage waterfalls.

    Fetches recent distributed traces from a running daemon's
    ``/traces?format=json`` endpoint and renders each as an ASCII
    waterfall (admission / queue / fsync / apply / ack).  A positional
    trace-id prefix filters to one trace (paste it from a
    ``submit --remote`` reply, an ``explain`` narrative, or a
    ``/metrics`` bucket exemplar); ``--slowest N`` surfaces the worst
    offenders; ``--follow`` tails new traces until interrupted.
    """
    import time as _time

    from repro.obs.spans import render_waterfall
    from repro.service import LandlordClient, ServiceError

    parser = argparse.ArgumentParser(
        prog="repro-landlord trace --url",
        description="Render distributed request traces from a running "
        "daemon as per-stage ASCII waterfalls.",
    )
    parser.add_argument("trace_id", nargs="?", default=None,
                        help="trace-id prefix to show (default: all "
                        "recent traces)")
    parser.add_argument("--url", required=True,
                        help="daemon endpoint (http://host:port or "
                        "unix:/path)")
    parser.add_argument("--last", type=int, default=10, metavar="N",
                        help="fetch the newest N traces "
                        "(default: %(default)s)")
    parser.add_argument("--slowest", type=int, default=None, metavar="N",
                        help="show only the N slowest fetched traces, "
                        "worst first")
    parser.add_argument("--follow", action="store_true",
                        help="keep polling and print traces as they "
                        "arrive (Ctrl-C to stop)")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="--follow poll interval "
                        "(default: %(default)s)")
    parser.add_argument("--width", type=int, default=32, metavar="COLS",
                        help="waterfall bar width (default: %(default)s)")
    args = parser.parse_args(argv)
    if args.last < 1:
        parser.error("--last must be >= 1")

    def fetch() -> list:
        client = LandlordClient(args.url)
        try:
            payload = client.traces(args.last)
        finally:
            client.close()
        traces = payload.get("traces", [])
        if args.trace_id:
            traces = [
                t for t in traces
                if t["trace_id"].startswith(args.trace_id)
            ]
        return traces

    def show(traces: list) -> None:
        if args.slowest is not None:
            traces = sorted(
                traces, key=lambda t: t["duration"], reverse=True
            )[:max(0, args.slowest)]
        for trace in traces:
            print(render_waterfall(trace, width=args.width))
            print()

    try:
        traces = fetch()
    except (ServiceError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not args.follow:
        if not traces:
            what = (
                f"trace {args.trace_id}..." if args.trace_id
                else "traces"
            )
            print(f"no {what} held by {args.url} "
                  "(the span ring is bounded — submit again and re-run)")
            return 1
        show(traces)
        return 0
    seen = {trace["trace_id"] for trace in traces}
    show(traces)
    try:
        while True:
            _time.sleep(max(0.05, args.interval))
            try:
                fresh = [
                    t for t in fetch() if t["trace_id"] not in seen
                ]
            except ServiceError:
                break  # daemon went away; a follow just ends
            seen.update(t["trace_id"] for t in fresh)
            show(fresh)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_replay(argv: Sequence[str]) -> int:
    from repro.core.cache import LandlordCache
    from repro.core.engine import ENGINES
    from repro.experiments.common import get_scale
    from repro.htc.simulator import simulate_stream
    from repro.htc.trace import iter_trace
    from repro.packages.sft import build_experiment_repository
    from repro.util.units import format_bytes, parse_bytes

    parser = argparse.ArgumentParser(prog="repro-landlord replay")
    parser.add_argument("trace", help="trace file to replay")
    parser.add_argument("--alpha", type=float, default=0.75)
    parser.add_argument("--capacity", default=None,
                        help="cache capacity, e.g. 1.4TB (default: scale's)")
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"], default=None)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--events-out", metavar="FILE", default=None,
                        help="record the cache-event log and write it as a "
                        "JSONL stream (consumable by "
                        "repro.analysis.report.timeline_from_events)")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="record cache metrics and save the registry "
                        "(.json = JSON snapshot, else Prometheus text)")
    parser.add_argument("--engine", choices=ENGINES, default="vectorized",
                        help="cache decision engine (bit-identical results; "
                        "default: %(default)s)")
    parser.add_argument("--batch-size", default="0", metavar="N|auto",
                        help="serve the trace in batched-submission windows "
                        "of N requests through LandlordCache.submit_batch "
                        "(bit-identical decisions, lower dispatch overhead; "
                        "0 = sequential, 'auto' = AIMD-governed window "
                        "sizing from the engine's observed dirty rate, "
                        "incompatible with --alert-rules)")
    parser.add_argument("--prefilter", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="count-window prefilter for the vectorized "
                        "engine's merge scans (bit-identical results; "
                        "--no-prefilter forces full bit-matrix scans)")
    parser.add_argument("--scratch-mb", type=float, default=None, metavar="MB",
                        help="batched-kernel scratch budget in MiB for the "
                        "vectorized engine (>= 1; bit-identical at any "
                        "budget via chunking; default: REPRO_SCRATCH_MB "
                        "or 32)")
    _alert_args(parser)
    args = parser.parse_args(argv)
    batch_size = _parse_batch_size(parser, "--batch-size", args.batch_size,
                                   minimum=0)
    if batch_size != 0 and args.alert_rules:
        parser.error("--batch-size is incompatible with --alert-rules "
                     "(alert rules are evaluated after every request)")
    scale = get_scale(args.scale)
    capacity = parse_bytes(args.capacity) if args.capacity else scale.capacity
    repo = build_experiment_repository(
        "sft", seed=args.seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    try:
        cache = LandlordCache(capacity, args.alpha, repo.size_of,
                              record_events=bool(args.events_out),
                              engine=args.engine,
                              prefilter=args.prefilter,
                              scratch_mb=args.scratch_mb)
    except ValueError as exc:
        parser.error(str(exc))
    registry = None
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    slo = alerts = None
    if args.alert_rules:
        from repro.obs import AlertEngine, SloTracker

        rules = _load_alert_rules(args.alert_rules)
        if rules is None:
            return 2
        slo = SloTracker(window=args.window)
        alerts = AlertEngine(rules, registry=registry)
    stream = [job.packages for job in iter_trace(args.trace)]
    result = simulate_stream(cache, stream, record_timeline=False,
                             metrics=registry, slo=slo, alerts=alerts,
                             batch_size=batch_size)
    stats = result.stats
    print(f"requests={stats.requests} hits={stats.hits} merges={stats.merges} "
          f"inserts={stats.inserts} deletes={stats.deletes}")
    if batch_size == "auto" and cache.last_batch_governor is not None:
        gov = cache.last_batch_governor.status()
        eng = getattr(cache._engine, "batch_stats", {})
        print(f"adaptive batching: {eng.get('windows', 0)} windows, "
              f"final size {gov['size']} "
              f"(+{gov['increases']} grow / x{gov['decreases']} shrink / "
              f"={gov['holds']} hold), "
              f"last dirty rate {eng.get('last_dirty_rate', 0.0):.3f}")
    print(f"cache efficiency {100 * result.cache_efficiency:.1f}%  "
          f"container efficiency {100 * result.container_efficiency:.1f}%")
    print(f"requested {format_bytes(stats.requested_bytes)}  "
          f"written {format_bytes(stats.bytes_written)}  "
          f"cached {format_bytes(result.cached_bytes)}")
    if args.events_out:
        from repro.obs import write_event_stream

        write_event_stream(cache.events, args.events_out)
        print(f"{len(cache.events)} events written to {args.events_out}")
    if registry is not None:
        from repro.obs import save_registry

        save_registry(registry, args.metrics_out)
        print(f"metrics saved to {args.metrics_out}")
    if alerts is not None:
        return _finish_alerts(alerts, args.alert_log)
    return 0


def _parse_batch_size(parser: argparse.ArgumentParser, flag: str,
                      value: str, minimum: int) -> "int | str":
    """Parse an N-or-'auto' window-size flag value (shared by replay/serve)."""
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        parser.error(f"{flag} must be an integer or 'auto', got {value!r}")
    if parsed < minimum:
        parser.error(f"{flag} must be >= {minimum} or 'auto'")
    return parsed


def _check_scratch_mb(parser: argparse.ArgumentParser,
                      value: "float | None") -> None:
    """Reject a bad --scratch-mb at argparse time, not deep in state load."""
    if value is None:
        return
    from repro.core.cache import _resolve_scratch_mb

    try:
        _resolve_scratch_mb(value)
    except ValueError as exc:
        parser.error(str(exc))


def _alert_args(parser: argparse.ArgumentParser) -> None:
    """The alert-rule flags shared by submit and replay."""
    from repro.obs import DEFAULT_WINDOW

    parser.add_argument("--alert-rules", metavar="FILE", default=None,
                        help="evaluate declarative alert rules (JSON list "
                        "of {name, expr, for} entries) over the rolling "
                        "window after every request; exit 1 if any fired")
    parser.add_argument("--alert-log", metavar="FILE", default=None,
                        help="append alert firing/resolved transitions "
                        "as JSON lines (the audit log)")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        metavar="N",
                        help="rolling-window size in requests for SLO "
                        "series (default: %(default)s)")


def _load_alert_rules(path: str):
    """Load an alert-rule file, reporting problems as a CLI error.

    Returns the rule list, or ``None`` after printing to stderr (the
    caller exits 2) when the file is missing or malformed.
    """
    from repro.obs import load_rules

    try:
        return load_rules(path)
    except OSError as exc:
        print(f"cannot read alert rules {path}: {exc}", file=sys.stderr)
    except ValueError as exc:
        print(f"bad alert rules {path}: {exc}", file=sys.stderr)
    return None


def _finish_alerts(alerts, alert_log: Optional[str]) -> int:
    """Print the alert outcome, write the audit log, gate the exit code."""
    from repro.obs import write_transitions

    for row in alerts.summary():
        print(f"alert {row['name']} [{row['state']}]: {row['expr']} "
              f"for {row['for']}")
    if alert_log:
        write_transitions(alerts.transitions, alert_log, append=True)
        print(f"{len(alerts.transitions)} alert transition(s) "
              f"appended to {alert_log}")
    if alerts.fired_ever:
        fired = sorted({t.rule for t in alerts.transitions
                        if t.state == "firing"})
        print(f"ALERT: {', '.join(fired)} fired during this run",
              file=sys.stderr)
    return alerts.exit_code


def _load_specfile(path: str, repo) -> "frozenset[str]":
    """Read a job specification from a file.

    Formats by extension: ``.py`` (scan imports), ``.sh`` (module loads),
    ``.json`` ({"packages": [...]} or a bare list), anything else (one
    requirement per line, ``#`` comments).  Names are resolved against the
    repository; unresolvable requirements abort the submission.
    """
    from pathlib import Path

    from repro.specs import (
        PackageResolver,
        spec_from_module_script,
        spec_from_python_source,
    )

    text = Path(path).read_text(encoding="utf-8")
    resolver = PackageResolver(repo)
    if path.endswith(".py"):
        report = spec_from_python_source(text, resolver, filename=path)
    elif path.endswith(".sh"):
        report = spec_from_module_script(text, resolver)
    elif path.endswith(".json"):
        import json as _json

        data = _json.loads(text)
        names = data["packages"] if isinstance(data, dict) else data
        report = resolver.resolve(names)
    else:
        names = [
            line.split("#", 1)[0].strip()
            for line in text.splitlines()
        ]
        report = resolver.resolve([n for n in names if n])
    if report.unresolved:
        raise SystemExit(
            "unresolvable requirements: " + ", ".join(report.unresolved)
        )
    return report.spec.packages


def _site_repository(
    scale_name: Optional[str], seed: int, repo_file: Optional[str] = None
):
    from repro.experiments.common import get_scale
    from repro.packages.sft import build_experiment_repository

    scale = get_scale(scale_name)
    if repo_file:
        from repro.packages.io import load_repository

        return scale, load_repository(repo_file)
    repo = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    return scale, repo


def _journal_args(parser: argparse.ArgumentParser) -> None:
    """The durable-state flags shared by submit/cache-status/recover."""
    parser.add_argument("--state", default=".landlord-state.json",
                        help="cache state file (default: %(default)s)")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="write-ahead journal file "
                        "(default: <state>.journal)")
    parser.add_argument("--no-journal", action="store_true",
                        help="disable write-ahead journalling (snapshot "
                        "rewritten after every request instead)")
    parser.add_argument("--migrate-v1", action="store_true",
                        help="accept a v1-format state file, stamping the "
                        "current policy knobs into it (v1 recorded none)")


def _obs_args(parser: argparse.ArgumentParser) -> None:
    """The observability flags shared by submit and cache-status."""
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="accumulate a metrics registry in FILE across "
                        "invocations (JSON; load, record, save)")
    parser.add_argument("--trace-file", metavar="FILE", default=None,
                        help="decision-trace sidecar "
                        "(default: <state>.trace.jsonl)")


def _trace_path(args: argparse.Namespace) -> str:
    """Resolve the decision-trace sidecar path for a state file."""
    return args.trace_file or f"{args.state}.trace.jsonl"


def _write_port_file(path: str, port: int) -> None:
    """Atomically publish a bound port: write a tmp file, then rename.

    Readers polling the file (the CI smoke scripts) therefore never see
    an empty or half-written file — the rename is the publication.
    """
    from pathlib import Path

    port_path = Path(path)
    port_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = port_path.with_name(port_path.name + ".tmp")
    tmp.write_text(f"{port}\n", encoding="utf-8")
    tmp.replace(port_path)


def _remove_port_file(path: str) -> None:
    """Best-effort unlink of a published port file.

    Tolerates the file being missing or its path being unusable (the
    write may itself have been the setup failure that brought us here).
    """
    from pathlib import Path

    try:
        Path(path).unlink()
    except OSError:
        pass


def _cmd_submit(argv: Sequence[str]) -> int:
    from repro.core.journal import JournaledState
    from repro.core.persistence import StateError, StateNotFound
    from repro.core.cache import LandlordCache
    from repro.core.engine import ENGINES
    from repro.util.units import format_bytes, parse_bytes

    parser = argparse.ArgumentParser(
        prog="repro-landlord submit",
        description="Prepare a container image for one job (the paper's "
        "job-wrapper deployment); cache state persists across invocations, "
        "write-ahead journalled so a crashed wrapper loses nothing.",
    )
    parser.add_argument("specfile", help=".py/.sh/.json/.txt job spec")
    _journal_args(parser)
    parser.add_argument("--snapshot-every", type=int, default=1, metavar="N",
                        help="rewrite the full snapshot every N requests, "
                        "relying on journal replay in between "
                        "(default: %(default)s)")
    parser.add_argument("--alpha", type=float, default=0.8,
                        help="merge threshold on first initialisation")
    parser.add_argument("--capacity", default=None,
                        help="cache capacity on first initialisation, "
                        "e.g. 300GB (default: the scale's)")
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"],
                        default=None)
    parser.add_argument("--seed", type=int, default=2020,
                        help="site repository seed")
    parser.add_argument("--repo", default=None, metavar="FILE",
                        help="load the site's real repository from a "
                        "JSON-lines file instead of the synthetic one")
    parser.add_argument("--no-closure", action="store_true",
                        help="treat the spec as already closed")
    parser.add_argument("--engine", choices=ENGINES, default="vectorized",
                        help="cache decision engine (bit-identical results, "
                        "so snapshots restore across engines; default: "
                        "%(default)s)")
    parser.add_argument("--scratch-mb", type=float, default=None, metavar="MB",
                        help="batched-kernel scratch budget in MiB for the "
                        "vectorized engine (>= 1; bit-identical at any "
                        "budget; default: REPRO_SCRATCH_MB or 32)")
    _obs_args(parser)
    parser.add_argument("--trace", action="store_true",
                        help="record a decision trace for this request "
                        "(inspect with `repro-landlord explain INDEX`)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="after handling the request, keep serving "
                        "/metrics, /healthz, /statusz and /traces on "
                        "127.0.0.1:PORT (0 = ephemeral) until "
                        "SIGTERM/SIGINT")
    parser.add_argument("--port-file", metavar="FILE", default=None,
                        help="with --serve, write the bound port to FILE "
                        "once listening (lets scripts use --serve 0)")
    parser.add_argument("--remote", metavar="URL", default=None,
                        help="forward the spec to a running "
                        "`repro-landlord serve` daemon at URL "
                        "(http://host:port or unix:/path) instead of "
                        "touching local state")
    parser.add_argument("--remote-retries", type=int, default=5,
                        metavar="N",
                        help="with --remote, retry up to N times when the "
                        "daemon signals backpressure (HTTP 429; "
                        "default: %(default)s)")
    _alert_args(parser)
    args = parser.parse_args(argv)
    if args.snapshot_every < 1:
        parser.error("--snapshot-every must be >= 1")
    if args.port_file and args.serve is None:
        parser.error("--port-file requires --serve")
    if args.remote and args.serve is not None:
        parser.error("--remote submits to an existing daemon; "
                     "it cannot be combined with --serve")
    _check_scratch_mb(parser, args.scratch_mb)

    scale, repo = _site_repository(args.scale, args.seed, args.repo)
    if args.remote:
        return _submit_remote(args, repo)
    repo_meta = (
        {"file": args.repo, "n_packages": len(repo)}
        if args.repo
        else {"scale": scale.name, "seed": args.seed,
              "n_packages": scale.n_packages}
    )
    store = JournaledState(
        args.state, args.journal, snapshot_every=args.snapshot_every,
        use_journal=not args.no_journal,
    )
    try:
        cache, metadata, replayed = store.load(
            repo.size_of, migrate_v1=args.migrate_v1, engine=args.engine,
            scratch_mb=args.scratch_mb,
        )
        if replayed:
            print(f"replayed {len(replayed)} journalled operation(s) "
                  "not yet covered by the snapshot")
        if metadata.get("repository") != repo_meta:
            print(
                f"state {args.state} was built for repository "
                f"{metadata.get('repository')}, not {repo_meta}",
                file=sys.stderr,
            )
            return 2
    except StateNotFound:
        capacity = (
            parse_bytes(args.capacity) if args.capacity else scale.capacity
        )
        cache = LandlordCache(capacity, args.alpha, repo.size_of,
                              engine=args.engine,
                              scratch_mb=args.scratch_mb)
        metadata = {"repository": repo_meta}
        store.initialise(cache, metadata)
        print(f"initialised new cache: capacity "
              f"{format_bytes(capacity)}, alpha {args.alpha}")
    except StateError as exc:
        # corrupt / v1 / policy-mismatched state is real data — refuse to
        # silently reinitialise over it
        print(str(exc), file=sys.stderr)
        return 2

    # Observability attaches *after* load/replay so that journalled
    # history already covered by the snapshot is not double-counted.
    registry = None
    if args.metrics_out or args.serve is not None:
        from repro.obs import MetricsRegistry, load_registry

        registry = (
            load_registry(args.metrics_out, missing_ok=True)
            if args.metrics_out
            else MetricsRegistry()
        )
        cache.enable_metrics(registry)
        if store.journal is not None:
            store.journal.enable_metrics(registry)
    tracer = None
    if args.trace:
        from repro.obs import DecisionTracer

        tracer = DecisionTracer()
        cache.enable_tracing(tracer)
    slo = alerts = None
    if args.serve is not None or args.alert_rules:
        from repro.obs import SloTracker

        slo = SloTracker(window=args.window)
        cache.enable_slo(slo)
    if args.alert_rules:
        from repro.obs import AlertEngine

        rules = _load_alert_rules(args.alert_rules)
        if rules is None:
            return 2
        alerts = AlertEngine(rules, registry=registry)

    packages = _load_specfile(args.specfile, repo)
    closed = packages if args.no_closure else repo.closure(packages)
    decision = store.apply(
        cache, metadata, "request", packages=sorted(closed)
    )
    print(
        f"{decision.action.value}: image {decision.image.id} "
        f"({decision.image.package_count} pkgs, "
        f"{format_bytes(decision.image.size)}; requested "
        f"{format_bytes(decision.requested_bytes)})"
    )
    if decision.evicted:
        print(f"evicted: {', '.join(decision.evicted)}")
    if alerts is not None:
        alerts.evaluate(slo.values(), cache.stats.requests - 1)
    if args.serve is not None:
        _serve_until_signal(args, cache, registry, tracer, slo, alerts)
    if registry is not None and args.metrics_out:
        from repro.obs import save_registry

        save_registry(registry, args.metrics_out)
    if tracer is not None:
        from repro.obs import write_traces

        traces = tracer.drain()
        trace_path = _trace_path(args)
        write_traces(traces, trace_path, append=True)
        for trace in traces:
            print(f"traced request #{trace.request_index} -> "
                  f"`repro-landlord explain {trace.request_index} "
                  f"--state {args.state}`")
    if alerts is not None:
        return _finish_alerts(alerts, args.alert_log)
    return 0


def _serve_until_signal(args, cache, registry, tracer, slo, alerts) -> None:
    """Run the embedded observability endpoint until SIGTERM/SIGINT.

    Scrapes refresh the ``slo_window`` gauges via the server's
    ``on_scrape`` hook; the bound port is printed and optionally written
    to ``--port-file`` so scripts (and the CI smoke test) can pass
    ``--serve 0`` and discover the ephemeral port.

    The serve loop is hardened in three ways (each regression-tested in
    ``tests/obs/test_server.py``): the port file is written atomically
    (tmp + rename — pollers never read a torn value) and unlinked on
    every exit path; *all* setup after construction runs inside the
    ``try`` so a failure (bad port-file path, signal registration from
    a non-main thread) still tears the server thread down; and the
    server shares one re-entrant lock with the cache
    (:meth:`~repro.core.cache.LandlordCache.enable_lock`) so a scrape
    never renders mid-mutation state.
    """
    import signal
    import threading

    from repro.obs import ObsServer, build_status

    lock = threading.RLock()
    cache.enable_lock(lock)
    on_scrape = (
        (lambda: slo.export_to(registry)) if slo is not None else None
    )
    server = ObsServer(
        registry,
        status_fn=lambda: build_status(cache, slo=slo, alerts=alerts),
        tracer=tracer,
        port=args.serve,
        on_scrape=on_scrape,
        lock=lock,
    )
    stop = threading.Event()
    previous = {}
    try:
        port = server.start()
        if args.port_file:
            _write_port_file(args.port_file, port)
        print(f"serving on http://127.0.0.1:{port} "
              "(/metrics /healthz /statusz /traces; SIGTERM to stop)")
        previous = {
            sig: signal.signal(sig, lambda *_: stop.set())
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.stop()
        if args.port_file:
            _remove_port_file(args.port_file)
        print("server stopped")


def _submit_remote(args: argparse.Namespace, repo) -> int:
    """Forward one job spec to a running daemon (``submit --remote``).

    The spec is resolved and dependency-closed locally against the same
    site repository the daemon serves, then POSTed through
    :class:`~repro.service.LandlordClient` with bounded retry on
    backpressure.  State/journal flags are ignored — the daemon owns
    durability; a printed decision has already been journalled there.
    """
    from repro.service import LandlordClient, ServiceError, SubmitRejected
    from repro.util.units import format_bytes

    packages = _load_specfile(args.specfile, repo)
    closed = packages if args.no_closure else repo.closure(packages)
    try:
        client = LandlordClient(args.remote)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        reply = client.submit(
            sorted(closed), retries=max(0, args.remote_retries)
        )
    except SubmitRejected as exc:
        print(f"daemon rejected the submission: {exc}", file=sys.stderr)
        return 3
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        client.close()
    print(
        f"{reply['action']}: image {reply['image']} "
        f"({reply['image_packages']} pkgs, "
        f"{format_bytes(reply['image_bytes'])}; requested "
        f"{format_bytes(reply['requested_bytes'])}) "
        f"[request #{reply['request_index']} via {args.remote}]"
    )
    if reply["evicted"]:
        print(f"evicted: {', '.join(reply['evicted'])}")
    if reply.get("trace_id"):
        print(
            f"trace {reply['trace_id']} (waterfall: repro-landlord "
            f"trace {reply['trace_id'][:8]} --url {args.remote})"
        )
    return 0


def _cmd_serve(argv: Sequence[str]) -> int:
    from repro.core.journal import JournaledState
    from repro.core.persistence import StateError, StateNotFound
    from repro.core.cache import LandlordCache
    from repro.core.engine import ENGINES
    from repro.obs import (
        AlertEngine,
        DecisionTracer,
        MetricsRegistry,
        SloTracker,
        load_registry,
    )
    from repro.service import LandlordDaemon
    from repro.util.units import format_bytes, parse_bytes

    parser = argparse.ArgumentParser(
        prog="repro-landlord serve",
        description="Run LANDLORD as a concurrent multi-client daemon: "
        "accept JSON spec submissions (POST /submit) from many clients "
        "through one journalled cache — every request is write-ahead "
        "journalled before it is acknowledged and adjacent queued "
        "requests are applied as single batched passes — while serving "
        "/metrics, /healthz, /statusz and /traces on the same port.  "
        "SIGTERM drains the queue, writes a final covering snapshot, "
        "and compacts the journal.",
    )
    _journal_args(parser)
    parser.add_argument("--snapshot-every", type=int, default=64,
                        metavar="N",
                        help="rewrite the full snapshot every N journalled "
                        "requests (default: %(default)s — the daemon "
                        "amortises; crashes replay the journal tail)")
    parser.add_argument("--alpha", type=float, default=0.8,
                        help="merge threshold on first initialisation")
    parser.add_argument("--capacity", default=None,
                        help="cache capacity on first initialisation, "
                        "e.g. 300GB (default: the scale's)")
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"],
                        default=None)
    parser.add_argument("--seed", type=int, default=2020,
                        help="site repository seed")
    parser.add_argument("--repo", default=None, metavar="FILE",
                        help="load the site's real repository from a "
                        "JSON-lines file instead of the synthetic one")
    parser.add_argument("--engine", choices=ENGINES, default="vectorized")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port on 127.0.0.1 (0 = ephemeral; "
                        "default: %(default)s)")
    parser.add_argument("--port-file", metavar="FILE", default=None,
                        help="write the bound port to FILE once listening "
                        "(atomic; removed on shutdown)")
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="additionally serve on a UNIX-domain socket "
                        "at PATH")
    parser.add_argument("--max-queue", type=int, default=1024, metavar="N",
                        help="admission-queue bound; submissions beyond it "
                        "are rejected with HTTP 429 (default: %(default)s)")
    parser.add_argument("--max-batch", default="256", metavar="N|auto",
                        help="largest request window applied as one "
                        "batched pass; 'auto' lets an AIMD governor size "
                        "the cap from queue depth and window latency vs "
                        "--ack-budget (default: %(default)s)")
    parser.add_argument("--ack-budget", type=float, default=0.25,
                        metavar="SECONDS",
                        help="target fsync+apply wall time per window for "
                        "--max-batch auto (default: %(default)s)")
    parser.add_argument("--scratch-mb", type=float, default=None, metavar="MB",
                        help="batched-kernel scratch budget in MiB for the "
                        "vectorized engine (>= 1; bit-identical at any "
                        "budget; default: REPRO_SCRATCH_MB or 32)")
    parser.add_argument("--span-limit", type=int, default=4096, metavar="N",
                        help="bounded ring of pipeline spans behind "
                        "/traces and `repro-landlord trace` "
                        "(default: %(default)s)")
    _obs_args(parser)
    parser.add_argument("--trace", action="store_true",
                        help="record decision traces to the sidecar so "
                        "`repro-landlord explain` works for "
                        "daemon-processed requests")
    _alert_args(parser)
    args = parser.parse_args(argv)
    if args.snapshot_every < 1:
        parser.error("--snapshot-every must be >= 1")
    if args.max_queue < 1:
        parser.error("--max-queue must be >= 1")
    max_batch = _parse_batch_size(parser, "--max-batch", args.max_batch,
                                  minimum=1)
    if args.ack_budget <= 0:
        parser.error("--ack-budget must be positive")
    if args.span_limit < 1:
        parser.error("--span-limit must be >= 1")
    _check_scratch_mb(parser, args.scratch_mb)

    scale, repo = _site_repository(args.scale, args.seed, args.repo)
    repo_meta = (
        {"file": args.repo, "n_packages": len(repo)}
        if args.repo
        else {"scale": scale.name, "seed": args.seed,
              "n_packages": scale.n_packages}
    )
    store = JournaledState(
        args.state, args.journal, snapshot_every=args.snapshot_every,
        use_journal=not args.no_journal,
    )
    try:
        cache, metadata, replayed = store.load(
            repo.size_of, migrate_v1=args.migrate_v1, engine=args.engine,
            scratch_mb=args.scratch_mb,
        )
        if replayed:
            print(f"replayed {len(replayed)} journalled operation(s) "
                  "not yet covered by the snapshot")
        if metadata.get("repository") != repo_meta:
            print(
                f"state {args.state} was built for repository "
                f"{metadata.get('repository')}, not {repo_meta}",
                file=sys.stderr,
            )
            return 2
    except StateNotFound:
        capacity = (
            parse_bytes(args.capacity) if args.capacity else scale.capacity
        )
        cache = LandlordCache(capacity, args.alpha, repo.size_of,
                              engine=args.engine,
                              scratch_mb=args.scratch_mb)
        metadata = {"repository": repo_meta}
        store.initialise(cache, metadata)
        print(f"initialised new cache: capacity "
              f"{format_bytes(capacity)}, alpha {args.alpha}")
    except StateError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    # The daemon always carries the full observability surface — it IS
    # the scrape endpoint for whatever fleet submits to it.
    registry = (
        load_registry(args.metrics_out, missing_ok=True)
        if args.metrics_out
        else MetricsRegistry()
    )
    cache.enable_metrics(registry)
    if store.journal is not None:
        store.journal.enable_metrics(registry)
    slo = SloTracker(window=args.window)
    cache.enable_slo(slo)
    alerts = None
    if args.alert_rules:
        rules = _load_alert_rules(args.alert_rules)
        if rules is None:
            return 2
        alerts = AlertEngine(rules, registry=registry)
    tracer = None
    if args.trace:
        tracer = DecisionTracer(limit=1024)
        cache.enable_tracing(tracer)

    daemon = LandlordDaemon(
        store, cache, metadata,
        port=args.port,
        socket_path=args.socket,
        max_queue=args.max_queue,
        max_batch=max_batch,
        ack_budget=args.ack_budget,
        registry=registry,
        slo=slo,
        alerts=alerts,
        tracer=tracer,
        trace_path=_trace_path(args) if args.trace else None,
        known_package=lambda p: p in repo,
        span_limit=args.span_limit,
    )

    import signal
    import threading

    stop = threading.Event()
    previous = {}
    # Hardened like _serve_until_signal: everything after construction
    # runs inside the try, so a setup failure still tears the daemon
    # down and removes the port file.
    try:
        port = daemon.start()
        if args.port_file:
            _write_port_file(args.port_file, port)
        endpoints = f"http://127.0.0.1:{port}"
        if args.socket:
            endpoints += f" and unix:{args.socket}"
        print(f"landlord daemon on {endpoints} "
              "(POST /submit; /metrics /healthz /statusz /traces; "
              "SIGTERM drains and snapshots)")
        previous = {
            sig: signal.signal(sig, lambda *_: stop.set())
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        daemon.stop()
        if args.port_file:
            _remove_port_file(args.port_file)
        print(f"daemon stopped: {daemon.accepted} accepted, "
              f"{daemon.rejected} rejected, {daemon.batches} batch(es); "
              "state flushed")

    if args.metrics_out:
        from repro.obs import save_registry

        save_registry(registry, args.metrics_out)
    if alerts is not None:
        return _finish_alerts(alerts, args.alert_log)
    return 0


def _cmd_explain(argv: Sequence[str]) -> int:
    from pathlib import Path

    from repro.obs import read_traces

    parser = argparse.ArgumentParser(
        prog="repro-landlord explain",
        description="Explain one cache decision from the trace sidecar a "
        "`submit --trace` invocation recorded: the candidates considered "
        "with their Jaccard distances, conflict rejections, the chosen "
        "operation, and any eviction victims with their reason.",
    )
    parser.add_argument("index", type=int,
                        help="request index to explain (0-based; shown by "
                        "`submit --trace` as it records)")
    parser.add_argument("--state", default=".landlord-state.json",
                        help="cache state file the trace sidecar belongs "
                        "to (default: %(default)s)")
    parser.add_argument("--trace-file", metavar="FILE", default=None,
                        help="decision-trace sidecar "
                        "(default: <state>.trace.jsonl)")
    args = parser.parse_args(argv)
    trace_path = _trace_path(args)
    if not Path(trace_path).exists():
        print(f"no trace file at {trace_path} — run "
              "`repro-landlord submit --trace ...` first", file=sys.stderr)
        return 2
    traces = read_traces(trace_path)
    trace = traces.get(args.index)
    if trace is None:
        held = sorted(traces)
        span = f"{held[0]}..{held[-1]}" if held else "none"
        print(f"request #{args.index} is not in {trace_path} "
              f"(traced indices: {span})", file=sys.stderr)
        return 1
    print(trace.explain())
    return 0


def _cmd_metrics(argv: Sequence[str]) -> int:
    from repro.obs import load_registry
    from repro.obs.metrics import Histogram
    from repro.util.tables import render_table

    parser = argparse.ArgumentParser(
        prog="repro-landlord metrics",
        description="Render a saved metrics registry (the JSON file a "
        "--metrics-out flag wrote) as a summary table, Prometheus or "
        "OpenMetrics text exposition format, or canonical JSON.",
    )
    parser.add_argument("file", help="metrics registry JSON file")
    parser.add_argument("--format",
                        choices=["table", "prom", "openmetrics", "json"],
                        default="table")
    args = parser.parse_args(argv)
    try:
        registry = load_registry(args.file)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "prom":
        print(registry.to_prometheus(), end="")
        return 0
    if args.format == "openmetrics":
        print(registry.to_openmetrics(), end="")
        return 0
    if args.format == "json":
        import json as _json

        print(_json.dumps(registry.to_json(), indent=1, sort_keys=True))
        return 0
    rows = []
    for family in registry.families():
        for key, child in family.series():
            labels = ",".join(
                f"{name}={value}"
                for name, value in zip(family.labelnames, key)
            )
            name = f"{family.name}{{{labels}}}" if labels else family.name
            if isinstance(family, Histogram):
                rows.append([
                    name,
                    child.count,
                    "-" if child.count == 0 else f"{child.mean:.3g}",
                    "-" if child.count == 0 else f"{child.quantile(0.5):.3g}",
                    "-" if child.count == 0 else f"{child.quantile(0.95):.3g}",
                ])
            else:
                value = child.value
                shown = (
                    str(int(value)) if float(value).is_integer()
                    else f"{value:.6g}"
                )
                rows.append([name, shown, "", "", ""])
    print(render_table(rows, header=["metric", "value/count", "mean",
                                     "p50", "p95"]))
    return 0


def _metrics_status_report(path: str) -> "list[str]":
    """Summarise a saved registry for ``cache-status``: the eviction
    breakdown and the journal fsync latency histogram."""
    from repro.obs import load_registry

    registry = load_registry(path)
    lines = [f"metrics ({path}):"]
    evictions = registry.get("landlord_evictions_total")
    if evictions is not None:
        parts = [
            f"{value} by {reason}"
            for (reason,), child in evictions.series()
            for value in [int(child.value)]
        ]
        lines.append("  evictions: " + (", ".join(parts) or "none"))
    fsync = registry.get("journal_fsync_seconds")
    if fsync is not None and fsync.series():
        child = fsync.series()[0][1]
        if child.count:
            lines.append(
                f"  journal fsync: {child.count} syncs, "
                f"mean {child.mean * 1e3:.2f} ms, "
                f"p50 {child.quantile(0.5) * 1e3:.2f} ms, "
                f"p95 {child.quantile(0.95) * 1e3:.2f} ms, "
                f"p99 {child.quantile(0.99) * 1e3:.2f} ms"
            )
    appends = registry.get("journal_appends_total")
    if appends is not None and appends.series():
        lines.append(
            f"  journal appends: {int(appends.series()[0][1].value)}"
        )
    return lines


def _cmd_cache_status(argv: Sequence[str]) -> int:
    from repro.core.journal import JournaledState
    from repro.core.persistence import StateError
    from repro.util.tables import render_table
    from repro.util.units import format_bytes

    parser = argparse.ArgumentParser(prog="repro-landlord cache-status")
    _journal_args(parser)
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"],
                        default=None)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--repo", default=None, metavar="FILE")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="metrics registry accumulated by `submit "
                        "--metrics-out`; reports the journal fsync latency "
                        "histogram and the eviction breakdown")
    args = parser.parse_args(argv)
    _scale, repo = _site_repository(args.scale, args.seed, args.repo)
    store = JournaledState(
        args.state, args.journal, use_journal=not args.no_journal
    )
    try:
        cache, _metadata, replayed = store.load(
            repo.size_of, migrate_v1=args.migrate_v1
        )
    except StateError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if replayed:
        print(f"journal: {len(replayed)} operation(s) pending beyond the "
              "snapshot (run `repro-landlord recover` to compact)")
    stats = cache.stats
    print(
        f"cache: {len(cache)} images, {format_bytes(cache.cached_bytes)} / "
        f"{format_bytes(cache.capacity)} "
        f"(unique {format_bytes(cache.unique_bytes)}, "
        f"efficiency {100 * cache.cache_efficiency:.0f}%), alpha {cache.alpha}"
    )
    print(
        f"lifetime: {stats.requests} requests — {stats.hits} hits, "
        f"{stats.merges} merges, {stats.inserts} inserts, "
        f"{stats.deletes} evictions; {format_bytes(stats.bytes_written)} "
        f"written"
    )
    if stats.deletes:
        print(f"eviction breakdown: {stats.evictions_capacity} by "
              f"capacity, {stats.evictions_idle} by idling")
    engine = getattr(cache, "_engine", None)
    prefilter = dict(getattr(engine, "prefilter_stats", None) or {})
    if prefilter.get("scans"):
        print(f"prefilter: {prefilter['scans']} scans, "
              f"{prefilter.get('candidates_pruned', 0)} candidates pruned "
              f"({prefilter.get('bands', 0)} LSH bands)")
    compaction = dict(getattr(engine, "compaction_stats", None) or {})
    batch = dict(getattr(engine, "batch_stats", None) or {})
    if compaction.get("compactions") or batch.get("windows"):
        print(f"engine: {compaction.get('compactions', 0)} compaction(s) "
              f"reclaiming {compaction.get('rows_reclaimed', 0)} row(s); "
              f"{batch.get('windows', 0)} batch window(s), "
              f"last dirty rate {batch.get('last_dirty_rate', 0.0):.2f}")
    rows = [
        [img.id, img.package_count, format_bytes(img.size),
         img.merge_count, img.last_used]
        for img in sorted(cache.images, key=lambda i: -i.last_used)
    ]
    print(render_table(rows, header=["image", "pkgs", "size", "merges",
                                     "last used"]))
    if args.metrics_out:
        from pathlib import Path

        if Path(args.metrics_out).exists():
            for line in _metrics_status_report(args.metrics_out):
                print(line)
        else:
            print(f"no metrics file at {args.metrics_out}")
    return 0


def _cmd_recover(argv: Sequence[str]) -> int:
    from repro.core.journal import JournaledState
    from repro.core.persistence import StateError

    parser = argparse.ArgumentParser(
        prog="repro-landlord recover",
        description="Explicit crash recovery: load the snapshot, replay "
        "the write-ahead journal tail, write a fresh snapshot covering "
        "it, and compact the journal.",
    )
    _journal_args(parser)
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"],
                        default=None)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--repo", default=None, metavar="FILE")
    args = parser.parse_args(argv)
    _scale, repo = _site_repository(args.scale, args.seed, args.repo)
    store = JournaledState(
        args.state, args.journal, use_journal=not args.no_journal
    )
    try:
        cache, metadata, replayed = store.load(
            repo.size_of, migrate_v1=args.migrate_v1
        )
    except StateError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    store.flush(cache, metadata)
    print(f"recovered: replayed {len(replayed)} journalled operation(s); "
          f"state covers {cache.stats.requests} requests "
          f"({len(cache)} images)")
    return 0


def _cmd_top(argv: Sequence[str]) -> int:
    from repro.obs import DEFAULT_WINDOW

    parser = argparse.ArgumentParser(
        prog="repro-landlord top",
        description="A top-style dashboard over a LANDLORD cache: replay "
        "a recorded --events-out JSONL stream frame by frame, or attach "
        "to a running `submit --serve` endpoint and poll /statusz.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--from-events", metavar="FILE",
                        help="replay a CacheEvent JSONL stream "
                        "(e.g. from `replay --events-out`)")
    source.add_argument("--url", metavar="URL",
                        help="poll a running observability endpoint, "
                        "e.g. http://127.0.0.1:9464")
    parser.add_argument("--every", type=int, default=100, metavar="N",
                        help="replay: one frame per N requests "
                        "(default: %(default)s)")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        metavar="N",
                        help="replay: rolling-window size "
                        "(default: %(default)s)")
    parser.add_argument("--capacity", default=None,
                        help="replay: cache capacity (e.g. 300GB) so the "
                        "occupancy bar can be drawn")
    parser.add_argument("--alpha", type=float, default=None,
                        help="replay: merge threshold to display")
    parser.add_argument("--alert-rules", metavar="FILE", default=None,
                        help="replay: evaluate alert rules while "
                        "replaying (default: the built-in rule set)")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="attach: poll period (default: %(default)s)")
    parser.add_argument("--iterations", type=int, default=0, metavar="N",
                        help="attach: stop after N polls (0 = forever)")
    parser.add_argument("--width", type=int, default=76,
                        help="frame width in columns (default: %(default)s)")
    parser.add_argument("--headless", action="store_true",
                        help="print every frame sequentially instead of "
                        "redrawing in place (for pipes, logs, and CI)")
    args = parser.parse_args(argv)
    if args.from_events:
        return _top_from_events(args)
    return _top_attach(args)


def _print_frame(frame: str, headless: bool) -> None:
    """One dashboard frame: redraw in place, or append when headless."""
    if headless:
        print(frame)
        print()
    else:
        # ANSI clear + home, like watch(1); frames replace each other.
        print("\x1b[2J\x1b[H" + frame, flush=True)


def _top_from_events(args: argparse.Namespace) -> int:
    """`top --from-events`: frames from a recorded JSONL stream."""
    from repro.obs import AlertEngine, frames_from_events
    from repro.util.units import parse_bytes

    if args.alert_rules:
        rules = _load_alert_rules(args.alert_rules)
        if rules is None:
            return 2
        alerts = AlertEngine(rules)
    else:
        alerts = AlertEngine()
    capacity = parse_bytes(args.capacity) if args.capacity else None
    try:
        for frame in frames_from_events(
            args.from_events,
            every=args.every,
            window=args.window,
            alerts=alerts,
            capacity=capacity,
            alpha=args.alpha,
            width=args.width,
        ):
            _print_frame(frame, args.headless)
    except FileNotFoundError:
        print(f"no event stream at {args.from_events}", file=sys.stderr)
        return 2
    return 0


def _top_attach(args: argparse.Namespace) -> int:
    """`top --url`: poll a live /statusz endpoint and redraw."""
    import json as _json
    import math
    import time
    import urllib.error
    import urllib.request

    from repro.obs import render_frame
    from repro.obs.dashboard import HISTORY_SERIES

    url = args.url.rstrip("/") + "/statusz"
    history: "dict[str, list[float]]" = {
        name: [] for name in HISTORY_SERIES
    }
    polls = 0
    while True:
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                status = _json.load(response)
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot reach {url}: {exc}", file=sys.stderr)
            return 2
        series = status.get("window", {}).get("series", {})
        for name in HISTORY_SERIES:
            value = (
                status.get("occupancy") if name == "occupancy"
                else series.get(name)
            )
            history[name].append(
                float("nan") if value is None else float(value)
            )
        _print_frame(
            render_frame(status, width=args.width, history=history),
            args.headless,
        )
        polls += 1
        if args.iterations and polls >= args.iterations:
            return 0
        time.sleep(args.interval)
    return 0  # pragma: no cover - unreachable


def _cmd_calibrate(argv: Sequence[str]) -> int:
    from repro.analysis.calibration import calibration_report

    parser = argparse.ArgumentParser(
        prog="repro-landlord calibrate",
        description="Measure a repository's structural statistics "
        "(closure amplification, core concentration, inter-spec "
        "distances) — the quantities the merge threshold lives against.",
    )
    parser.add_argument("--scale", choices=["tiny", "quick", "paper"],
                        default=None)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--repo", default=None, metavar="FILE",
                        help="JSON-lines repository file to calibrate")
    args = parser.parse_args(argv)
    _scale, repo = _site_repository(args.scale, args.seed, args.repo)
    report = calibration_report(repo, seed=args.seed)
    for line in report.lines():
        print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch a repro-landlord command; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = sorted(
        list(_FIGURES)
        + ["all", "sweep", "bench", "trace", "replay", "submit",
           "serve", "cache-status", "recover", "explain", "metrics",
           "top", "calibrate"]
    )
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("commands:", ", ".join(commands))
        return 0
    command, rest = argv[0], argv[1:]
    if command in _FIGURES:
        return _FIGURES[command].main(rest)
    if command == "all":
        for name, module in _FIGURES.items():
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            status = module.main(rest)
            if status:
                return status
        return 0
    if command == "sweep":
        return _cmd_sweep(rest)
    if command == "bench":
        return _cmd_bench(rest)
    if command == "trace":
        return _cmd_trace(rest)
    if command == "replay":
        return _cmd_replay(rest)
    if command == "submit":
        return _cmd_submit(rest)
    if command == "serve":
        return _cmd_serve(rest)
    if command == "cache-status":
        return _cmd_cache_status(rest)
    if command == "recover":
        return _cmd_recover(rest)
    if command == "explain":
        return _cmd_explain(rest)
    if command == "metrics":
        return _cmd_metrics(rest)
    if command == "top":
        return _cmd_top(rest)
    if command == "calibrate":
        return _cmd_calibrate(rest)
    print(f"unknown command: {command!r}; available: {', '.join(commands)}",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
