"""Zero-dependency metrics registry: counters, gauges, histograms.

Production cache deployments are operated through exported metrics (the
CMS XCache fleet and Charliecloud's build cache both motivate every
design decision with cache-event counters), so the reproduction carries
the same substrate: a :class:`MetricsRegistry` of named metric families
— :class:`Counter`, :class:`Gauge`, and fixed-bucket :class:`Histogram`,
each optionally labelled — exposable as Prometheus text exposition
format and as a JSON snapshot.

Two properties shape the implementation:

- **The disabled path is free.**  Nothing here is global: a cache (or
  journal, or simulator) holds either a registry or ``None``, and every
  instrumentation site is guarded by one ``is not None`` check.  The
  hot paths additionally pre-bind label children once
  (:meth:`Counter.labels`), so an enabled increment is a single bound
  method call with no dict construction.
- **Merging is deterministic.**  :meth:`MetricsRegistry.snapshot`
  produces a canonical (label-sorted) JSON-safe form and
  :meth:`MetricsRegistry.merge_snapshot` folds one in by summation
  (counters, histograms) or replacement (gauges).  Merging worker
  snapshots in submission order therefore yields bit-identical parent
  registries for any worker count — for every metric whose *values* are
  deterministic.  By convention (documented in DESIGN.md) wall-clock
  metrics are named ``*_seconds``;
  :meth:`MetricsRegistry.deterministic_snapshot` excludes exactly
  those, and is what determinism tests compare.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DISTANCE_BUCKETS",
    "EXEMPLAR_MAX_RUNES",
    "OPENMETRICS_CONTENT_TYPE",
    "PROMETHEUS_CONTENT_TYPE",
    "load_registry",
    "save_registry",
]

PathLike = Union[str, Path]

# Exponential latency buckets from 1 µs to 1 s — wide enough for an
# in-memory subset scan and a journal fsync on spinning rust alike.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)

# Jaccard-distance buckets matching the paper's α grid granularity.
DISTANCE_BUCKETS: Tuple[float, ...] = tuple(
    round(0.05 * i, 2) for i in range(1, 21)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Exposition content types for the two text formats we can emit.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

# OpenMetrics caps an exemplar's label set (all names + values) at 128
# runes; oversize exemplars are dropped at render time, never emitted.
EXEMPLAR_MAX_RUNES = 128


def _render_exemplar(exemplars, bucket_index: int) -> str:
    """The `` # {labels} value [timestamp]`` suffix for one bucket, or
    ``""``.  The timestamp (wall-clock epoch seconds from the hybrid
    clock, per the OpenMetrics spec's optional third exemplar field) is
    emitted only when the observation carried one."""
    if exemplars is None:
        return ""
    cell = exemplars[bucket_index]
    if cell is None:
        return ""
    labels, value = cell[0], cell[1]
    if sum(len(str(k)) + len(str(v)) for k, v in labels) > EXEMPLAR_MAX_RUNES:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in labels
    )
    suffix = f" # {{{body}}} {_format_value(value)}"
    if len(cell) > 2 and cell[2] is not None:
        suffix += f" {_format_value(float(cell[2]))}"
    return suffix


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    out = tuple(labelnames)
    for label in out:
        if not _LABEL_RE.match(label) or label == "le":
            raise ValueError(f"invalid label name {label!r}")
    if len(set(out)) != len(out):
        raise ValueError(f"duplicate label names in {out}")
    return out


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class _BoundCounter:
    """One labelled series of a :class:`Counter` (pre-resolved child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1; must be non-negative)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class _BoundGauge:
    """One labelled series of a :class:`Gauge`."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount


class _BoundHistogram:
    """One labelled series of a :class:`Histogram` (bucket counts).

    Each bucket can additionally hold one *exemplar* — a tiny label set
    (e.g. ``(("request", "1423"),)``) plus the observed value — the
    OpenMetrics mechanism that lets a latency bucket link back to the
    concrete request that landed in it.  Storage is lazy: a series that
    never sees an exemplar pays one ``None`` attribute.
    """

    __slots__ = ("uppers", "counts", "sum", "count", "exemplars")

    def __init__(self, uppers: Tuple[float, ...]) -> None:
        self.uppers = uppers
        self.counts = [0] * (len(uppers) + 1)  # final slot is +Inf
        self.sum: float = 0.0
        self.count: int = 0
        self.exemplars: Optional[List[Optional[tuple]]] = None

    def observe(
        self,
        value: float,
        exemplar: Optional[tuple] = None,
        exemplar_ts: Optional[float] = None,
    ) -> None:
        """Record one observation into its bucket.

        ``exemplar`` is a tuple of ``(label, value)`` string pairs; the
        newest exemplar per bucket wins (matching the "most recent
        sample" recommendation of the OpenMetrics spec).
        ``exemplar_ts`` optionally stamps it with wall-clock epoch
        seconds (rendered as the spec's third exemplar field); cells
        without one stay 2-tuples, so timestamp-less callers are
        untouched.
        """
        lo, hi = 0, len(self.uppers)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.uppers[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1
        if exemplar is not None:
            if self.exemplars is None:
                self.exemplars = [None] * len(self.counts)
            self.exemplars[lo] = (
                (exemplar, value) if exemplar_ts is None
                else (exemplar, value, exemplar_ts)
            )

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0–1) from the bucket counts.

        Linear interpolation within the containing bucket, the same
        estimate ``histogram_quantile`` computes in PromQL; returns
        ``nan`` when the series is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if seen + bucket_count >= rank and bucket_count:
                lower = 0.0 if i == 0 else self.uppers[i - 1]
                upper = (
                    self.uppers[i] if i < len(self.uppers)
                    else self.uppers[-1]
                )
                fraction = (rank - seen) / bucket_count
                return lower + (upper - lower) * min(1.0, fraction)
            seen += bucket_count
        return self.uppers[-1]  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        """Average observed value (``nan`` when empty)."""
        return self.sum / self.count if self.count else float("nan")


class _Family:
    """Shared machinery of a named metric family with labels."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if tuple(labels) != self.labelnames:
            if set(labels) != set(self.labelnames):
                raise ValueError(
                    f"{self.name}: expected labels {self.labelnames}, "
                    f"got {tuple(labels)}"
                )
        return tuple(str(labels[label]) for label in self.labelnames)

    def _child_for(self, key: Tuple[str, ...]):
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """All (label values, child) pairs, sorted for determinism."""
        return sorted(self._children.items())


class Counter(_Family):
    """A monotonically increasing metric family (e.g. requests served)."""

    kind = "counter"

    def _new_child(self) -> _BoundCounter:
        return _BoundCounter()

    def labels(self, **labels: str) -> _BoundCounter:
        """Resolve (creating if needed) the child for one label set."""
        return self._child_for(self._key(labels))

    def inc(self, amount: float = 1, **labels: str) -> None:
        """Increment one labelled series by ``amount``."""
        self.labels(**labels).inc(amount)

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0 when never touched)."""
        child = self._children.get(self._key(labels))
        return child.value if child is not None else 0


class Gauge(_Family):
    """A metric family that can go up and down (e.g. cached bytes)."""

    kind = "gauge"

    def _new_child(self) -> _BoundGauge:
        return _BoundGauge()

    def labels(self, **labels: str) -> _BoundGauge:
        """Resolve (creating if needed) the child for one label set."""
        return self._child_for(self._key(labels))

    def set(self, value: float, **labels: str) -> None:
        """Set one labelled series to an absolute value."""
        self.labels(**labels).set(value)

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0 when never touched)."""
        child = self._children.get(self._key(labels))
        return child.value if child is not None else 0


class Histogram(_Family):
    """A fixed-bucket cumulative histogram family (Prometheus semantics).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    rest, and ``sum``/``count`` ride along, so rates and means are
    derivable exactly as with ``prometheus_client``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise ValueError("histogram needs at least one bucket")
        if list(uppers) != sorted(set(uppers)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = uppers

    def _new_child(self) -> _BoundHistogram:
        return _BoundHistogram(self.buckets)

    def labels(self, **labels: str) -> _BoundHistogram:
        """Resolve (creating if needed) the child for one label set."""
        return self._child_for(self._key(labels))

    def observe(
        self,
        value: float,
        exemplar: Optional[tuple] = None,
        exemplar_ts: Optional[float] = None,
        **labels: str,
    ) -> None:
        """Record one observation into one labelled series."""
        self.labels(**labels).observe(value, exemplar, exemplar_ts)


def _openmetrics_names(family: _Family) -> Tuple[str, str]:
    """``(display, sample)`` names for one family in OpenMetrics mode.

    Counters drop their ``_total`` suffix in ``# TYPE``/``# HELP`` lines
    while samples keep (or gain) it; other kinds are unchanged.
    """
    display = family.name
    sample_name = family.name
    if family.kind == "counter":
        if display.endswith("_total"):
            display = display[: -len("_total")]
        else:
            sample_name = f"{display}_total"
    return display, sample_name


def family_header_lines(family: _Family, openmetrics: bool) -> List[str]:
    """The ``# HELP`` / ``# TYPE`` block for one family."""
    display = _openmetrics_names(family)[0] if openmetrics else family.name
    return [
        f"# HELP {display} {family.help}",
        f"# TYPE {display} {family.kind}",
    ]


def render_family_lines(
    family: _Family,
    openmetrics: bool,
    extra_labels: Tuple[Tuple[str, str], ...] = (),
) -> List[str]:
    """Sample lines (no header) for one family's series.

    ``extra_labels`` are prepended to every series — the fleet renderer
    in :mod:`repro.obs.telemetry` uses this to interleave per-worker
    series (``worker="pid-1234"``) under the aggregated family's single
    ``# TYPE`` block, which both exposition formats require.  Exemplars
    are emitted only in OpenMetrics mode (classic Prometheus text has no
    syntax for them).
    """
    display, sample_name = (
        _openmetrics_names(family) if openmetrics
        else (family.name, family.name)
    )
    prefix = [
        f'{label}="{_escape_label_value(str(value))}"'
        for label, value in extra_labels
    ]
    lines: List[str] = []
    for key, child in family.series():
        labelled = prefix + [
            f'{label}="{_escape_label_value(value)}"'
            for label, value in zip(family.labelnames, key)
        ]
        base = ",".join(labelled)
        if isinstance(family, Histogram):
            cumulative = 0
            for i, (upper, count) in enumerate(
                zip(list(family.buckets) + [float("inf")], child.counts)
            ):
                cumulative += count
                le = "+Inf" if math.isinf(upper) else _format_value(upper)
                sep = "," if base else ""
                line = (
                    f'{display}_bucket{{{base}{sep}le="{le}"}} {cumulative}'
                )
                if openmetrics:
                    line += _render_exemplar(child.exemplars, i)
                lines.append(line)
            suffix = f"{{{base}}}" if base else ""
            lines.append(
                f"{display}_sum{suffix} {_format_value(child.sum)}"
            )
            lines.append(f"{display}_count{suffix} {child.count}")
        else:
            suffix = f"{{{base}}}" if base else ""
            lines.append(
                f"{sample_name}{suffix} {_format_value(child.value)}"
            )
    return lines


class MetricsRegistry:
    """An ordered collection of metric families with export and merge.

    Registration is idempotent: asking for an existing name with the
    same type/labels/buckets returns the existing family, so call sites
    can declare their metrics without coordinating; a conflicting
    re-registration raises :class:`ValueError` instead of silently
    aliasing two meanings onto one name.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        """Whether a family with this name is registered."""
        return name in self._families

    def get(self, name: str) -> Optional[_Family]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def families(self) -> List[_Family]:
        """All families in registration order."""
        return list(self._families.values())

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is None:
            self._families[family.name] = family
            return family
        if type(existing) is not type(family):
            raise ValueError(
                f"metric {family.name!r} already registered as "
                f"{existing.kind}, cannot re-register as {family.kind}"
            )
        if existing.labelnames != family.labelnames:
            raise ValueError(
                f"metric {family.name!r} already registered with labels "
                f"{existing.labelnames}, cannot re-register with "
                f"{family.labelnames}"
            )
        if (
            isinstance(existing, Histogram)
            and existing.buckets != family.buckets  # type: ignore[attr-defined]
        ):
            raise ValueError(
                f"histogram {family.name!r} already registered with "
                f"bucket bounds {existing.buckets}, cannot re-register "
                f"with {family.buckets}"  # type: ignore[attr-defined]
            )
        return existing

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get-or-create a :class:`Counter` family."""
        return self._register(Counter(name, help, labelnames))  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get-or-create a :class:`Gauge` family."""
        return self._register(Gauge(name, help, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Get-or-create a :class:`Histogram` family."""
        return self._register(Histogram(name, help, labelnames, buckets))  # type: ignore[return-value]

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Canonical JSON-safe view of every family and series.

        Series are sorted by label values, so two registries holding the
        same data produce byte-identical snapshots regardless of the
        order series were touched in.
        """
        families = {}
        for family in self._families.values():
            entry: dict = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
                series_out = []
                for key, child in family.series():
                    item = {
                        "labels": list(key),
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                    }
                    if child.exemplars is not None:
                        # Preserve arity: timestamped cells serialise as
                        # [labels, value, ts], bare ones as [labels, value].
                        item["exemplars"] = [
                            None
                            if cell is None
                            else [[list(pair) for pair in cell[0]]]
                            + list(cell[1:])
                            for cell in child.exemplars
                        ]
                    series_out.append(item)
                entry["series"] = series_out
            else:
                entry["series"] = [
                    {"labels": list(key), "value": child.value}
                    for key, child in family.series()
                ]
            families[family.name] = entry
        return {"v": 1, "families": families}

    def deterministic_snapshot(self) -> dict:
        """The snapshot minus wall-clock metrics (names ending
        ``_seconds``) — the part that must be bit-identical between a
        serial run and any parallel fan-out of the same work."""
        snap = self.snapshot()
        snap["families"] = {
            name: entry
            for name, entry in snap["families"].items()
            if not name.endswith("_seconds")
        }
        return snap

    def to_json(self) -> dict:
        """Alias of :meth:`snapshot` (the JSON export format)."""
        return self.snapshot()

    def to_prometheus(self) -> str:
        """Render every family in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self._families.values():
            lines.extend(family_header_lines(family, openmetrics=False))
            lines.extend(render_family_lines(family, openmetrics=False))
        return "\n".join(lines) + "\n" if lines else ""

    def to_openmetrics(self) -> str:
        """Render every family in the OpenMetrics text exposition format.

        Differences from :meth:`to_prometheus`: the ``# TYPE`` line of a
        counter names the family *without* its ``_total`` suffix while
        samples keep it; histogram bucket samples carry exemplars when
        one was captured (``# {request="42"} 0.0031``), with an optional
        trailing wall-clock timestamp when the observation was stamped
        by a :class:`~repro.obs.clock.HybridClock`
        (``# {trace_id="..."} 0.0031 1700000000.5``); and the body
        terminates with the mandatory ``# EOF`` marker.  Scrape it with
        ``Accept: application/openmetrics-text`` semantics — the content
        type is :data:`OPENMETRICS_CONTENT_TYPE`.
        """
        lines: List[str] = []
        for family in self._families.values():
            lines.extend(family_header_lines(family, openmetrics=True))
            lines.extend(render_family_lines(family, openmetrics=True))
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    # -- merge -------------------------------------------------------------

    def merge_snapshot(self, snap: dict) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the incoming value
        (the merged snapshot is the newer observation).  Families absent
        here are created with the snapshot's declaration.  Shape drift
        never mis-sums silently: a family that exists with a different
        type, label set, or histogram bucket bounds raises
        :class:`ValueError` naming the metric and both shapes, and a
        histogram series whose count vector does not match the declared
        buckets is rejected the same way.  Bucket exemplars, when
        present, take the incoming value per bucket (newest wins, so
        index-ordered folding keeps the result deterministic).
        """
        for name, entry in snap.get("families", {}).items():
            kind = entry["type"]
            labelnames = tuple(entry.get("labelnames", ()))
            try:
                if kind == "counter":
                    family = self.counter(
                        name, entry.get("help", ""), labelnames
                    )
                elif kind == "gauge":
                    family = self.gauge(
                        name, entry.get("help", ""), labelnames
                    )
                elif kind == "histogram":
                    buckets = entry.get("buckets")
                    if not buckets:
                        raise ValueError(
                            "snapshot histogram entry declares no buckets"
                        )
                    family = self.histogram(
                        name, entry.get("help", ""), labelnames,
                        buckets=buckets,
                    )
                else:
                    raise ValueError(f"unknown metric type {kind!r}")
            except ValueError as exc:
                raise ValueError(
                    f"cannot merge snapshot family {name!r}: {exc}"
                ) from None
            if kind == "counter":
                for series in entry["series"]:
                    child = family._child_for(tuple(series["labels"]))
                    child.inc(series["value"])
            elif kind == "gauge":
                for series in entry["series"]:
                    child = family._child_for(tuple(series["labels"]))
                    child.set(series["value"])
            else:
                for series in entry["series"]:
                    child = family._child_for(tuple(series["labels"]))
                    counts = series["counts"]
                    if len(counts) != len(child.counts):
                        raise ValueError(
                            f"cannot merge snapshot family {name!r}: "
                            f"series {series['labels']} has "
                            f"{len(counts)} bucket counts, registered "
                            f"bounds need {len(child.counts)}"
                        )
                    for i, count in enumerate(counts):
                        child.counts[i] += count
                    child.sum += series["sum"]
                    child.count += series["count"]
                    incoming = series.get("exemplars")
                    if incoming:
                        if child.exemplars is None:
                            child.exemplars = [None] * len(child.counts)
                        for i, cell in enumerate(incoming):
                            if cell is not None:
                                labels_part, value = cell[0], cell[1]
                                rebuilt = (
                                    tuple(
                                        tuple(pair) for pair in labels_part
                                    ),
                                    value,
                                )
                                if len(cell) > 2:
                                    rebuilt += (cell[2],)
                                child.exemplars[i] = rebuilt

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricsRegistry":
        """A fresh registry holding exactly one snapshot's contents."""
        registry = cls()
        registry.merge_snapshot(snap)
        return registry


def save_registry(registry: MetricsRegistry, path: PathLike) -> Path:
    """Write a registry to disk — JSON for ``.json`` paths, Prometheus
    text exposition format for everything else."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".json":
        path.write_text(
            json.dumps(registry.snapshot(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    else:
        path.write_text(registry.to_prometheus(), encoding="utf-8")
    return path


def load_registry(path: PathLike, missing_ok: bool = False) -> MetricsRegistry:
    """Load a JSON registry snapshot from disk.

    Only the JSON format round-trips (the Prometheus text format is an
    export, not a store).  With ``missing_ok`` a nonexistent file yields
    an empty registry — the first run of an accumulating CLI flag.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        if missing_ok:
            return MetricsRegistry()
        raise
    try:
        snap = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt metrics file {path}: {exc}") from exc
    return MetricsRegistry.from_snapshot(snap)
