"""Distributed request tracing: spans, trace context, waterfalls.

A slow ``landlord_request_seconds`` bucket says *that* a request was
slow; this module says *where the time went*.  One submission becomes
one **trace** — a 32-hex id minted by the client (or the daemon, for
bare curl) — carrying one :class:`Span` per pipeline stage::

    admission -> queue -> fsync -> apply -> ack

Zero-dependency by construction, like the rest of :mod:`repro.obs`:

- **Propagation** uses the W3C Trace Context ``traceparent`` header
  shape (``00-<32hex trace>-<16hex span>-<2hex flags>``), so the wire
  format is what real collectors speak
  (:func:`format_traceparent` / :func:`parse_traceparent`).
- **Recording** goes into a :class:`SpanRecorder` — a thread-safe
  bounded ring buffer (old traces fall off; memory is O(limit)) that
  simultaneously feeds per-stage histogram families
  (``service_stage_seconds{stage=...}``) whose bucket exemplars carry
  the ``trace_id`` plus a wall-clock timestamp, so a fat bucket clicks
  through to the exact waterfall.
- **Time** comes from an injectable
  :class:`~repro.obs.clock.HybridClock`: durations are monotonic,
  timestamps are wall-clock, and tests freeze both.  Every span metric
  lives in a ``*_seconds`` family, keeping deterministic snapshots
  untouched.
- **Rendering** is :func:`render_waterfall` — the ASCII per-stage
  breakdown behind ``repro-landlord trace``.

Sweep workers reuse the same :class:`Span` model locally (one trace per
simulation cell — see :mod:`repro.parallel.simulations`), so serial and
parallel runs emit comparable traces.
"""

from __future__ import annotations

import math
import os
import re
import threading
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .clock import HybridClock, default_clock

__all__ = [
    "SERVICE_STAGES",
    "TRACEPARENT_HEADER",
    "Span",
    "ActiveSpan",
    "SpanRecorder",
    "format_traceparent",
    "parse_traceparent",
    "new_span_id",
    "new_trace_id",
    "render_waterfall",
]

#: The five pipeline stages of one daemon submission, in order.
SERVICE_STAGES: Tuple[str, ...] = (
    "admission", "queue", "fsync", "apply", "ack",
)

#: The HTTP header carrying trace context (W3C Trace Context shape).
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace>[0-9a-f]{32})"
    r"-(?P<span>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh random 32-hex (128-bit) trace id (never all-zero)."""
    while True:
        trace_id = os.urandom(16).hex()
        if trace_id != "0" * 32:  # the spec's invalid sentinel
            return trace_id


def new_span_id() -> str:
    """A fresh random 16-hex (64-bit) span id (never all-zero)."""
    while True:
        span_id = os.urandom(8).hex()
        if span_id != "0" * 16:
            return span_id


def format_traceparent(
    trace_id: str, span_id: str, sampled: bool = True
) -> str:
    """Render a ``traceparent`` header value (version-00 format)."""
    header = f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"
    if parse_traceparent(header) is None:
        raise ValueError(
            f"invalid trace context ids {trace_id!r}/{span_id!r}"
        )
    return header


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, str]]:
    """Parse a ``traceparent`` header into ``(trace_id, span_id)``.

    Returns ``None`` for anything malformed — the forward-compatible
    posture of the W3C spec: an unparseable header means "start a new
    trace", never "fail the request".  Version ``ff`` and all-zero ids
    are invalid per spec and also yield ``None``.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    if match.group("version") == "ff":
        return None
    trace_id = match.group("trace")
    span_id = match.group("span")
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return trace_id, span_id


@dataclass(frozen=True)
class Span:
    """One completed, named slice of a trace.

    ``start`` is wall-clock epoch seconds (from the hybrid clock) and
    ``duration`` is a monotonic-sourced interval, so ``start`` says
    *when* and ``duration`` says *how long* — each from the clock that
    is trustworthy for it.
    """

    trace_id: str
    span_id: str
    name: str
    start: float
    duration: float
    parent_id: Optional[str] = None
    request_index: Optional[int] = None
    attrs: Tuple[Tuple[str, str], ...] = ()

    @property
    def end(self) -> float:
        """Wall-clock end instant (``start + duration``)."""
        return self.start + self.duration

    def to_jsonable(self) -> dict:
        """JSON-safe dict form (the ``/traces`` JSON view)."""
        out = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.request_index is not None:
            out["request_index"] = self.request_index
        if self.attrs:
            out["attrs"] = [list(pair) for pair in self.attrs]
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "Span":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            name=data["name"],
            start=data["start"],
            duration=data["duration"],
            parent_id=data.get("parent_id"),
            request_index=data.get("request_index"),
            attrs=tuple(
                (str(k), str(v)) for k, v in data.get("attrs", ())
            ),
        )


class ActiveSpan:
    """An in-flight span: started now, recorded on :meth:`finish`.

    Usable as a context manager (``with recorder.start("stage"): ...``);
    exceptions still finish the span so traces never leak open slices.
    """

    __slots__ = (
        "recorder", "name", "trace_id", "span_id", "parent_id",
        "request_index", "attrs", "start_mono",
    )

    def __init__(
        self,
        recorder: "SpanRecorder",
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        request_index: Optional[int] = None,
        attrs: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.recorder = recorder
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.request_index = request_index
        self.attrs = attrs
        self.start_mono = recorder.clock.monotonic()

    def finish(
        self, request_index: Optional[int] = None
    ) -> Span:
        """Close the span now and record it; returns the frozen span."""
        mono = self.recorder.clock.monotonic()
        return self.recorder.observe(
            self.name,
            self.start_mono,
            mono - self.start_mono,
            self.trace_id,
            parent_id=self.parent_id,
            request_index=(
                request_index if request_index is not None
                else self.request_index
            ),
            attrs=self.attrs,
            span_id=self.span_id,
        )

    def __enter__(self) -> "ActiveSpan":
        """Context-manager entry: the active span itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: finish (also on exception)."""
        self.finish()


class SpanRecorder:
    """A bounded, thread-safe ring buffer of spans + stage histograms.

    Args:
        limit: ring-buffer capacity in *spans* (a five-stage service
            trace costs five slots); the oldest spans fall off first,
            so memory stays O(limit) under any client load.
        clock: the :class:`~repro.obs.clock.HybridClock` stamping spans
            (defaults to the process-wide clock; tests inject a
            :class:`~repro.obs.clock.FrozenClock`).
        registry: optional :class:`~repro.obs.MetricsRegistry`; when
            given, every recorded span also lands in the ``family``
            histogram labelled ``{stage="<span name>"}``, with a bucket
            exemplar carrying the ``trace_id`` and the span's wall-clock
            end time.
        family: the histogram family name (``service_stage_seconds`` for
            the daemon; sweeps use ``sweep_stage_seconds``).  Must end
            in ``_seconds`` — span latencies are wall-clock telemetry
            and stay out of deterministic snapshots.
    """

    def __init__(
        self,
        limit: int = 2048,
        clock: Optional[HybridClock] = None,
        registry=None,
        family: str = "service_stage_seconds",
        help: str = "Wall-clock seconds per request pipeline stage.",
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        if not family.endswith("_seconds"):
            raise ValueError(
                "span families must end in _seconds (wall-clock telemetry "
                f"is excluded from deterministic snapshots): {family!r}"
            )
        self.limit = limit
        self.clock = clock if clock is not None else default_clock()
        self._spans: "deque[Span]" = deque(maxlen=limit)
        self._lock = threading.Lock()
        self._family = (
            registry.histogram(family, help, labelnames=("stage",))
            if registry is not None
            else None
        )
        self._stage_timers: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._spans)

    # -- recording ---------------------------------------------------------

    def start(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        request_index: Optional[int] = None,
        attrs: Sequence[Tuple[str, str]] = (),
    ) -> ActiveSpan:
        """Open an :class:`ActiveSpan` now (new trace id when omitted)."""
        return ActiveSpan(
            self,
            name,
            trace_id if trace_id is not None else new_trace_id(),
            parent_id=parent_id,
            request_index=request_index,
            attrs=tuple(attrs),
        )

    def observe(
        self,
        name: str,
        start_mono: float,
        duration: float,
        trace_id: str,
        parent_id: Optional[str] = None,
        request_index: Optional[int] = None,
        attrs: Sequence[Tuple[str, str]] = (),
        span_id: Optional[str] = None,
    ) -> Span:
        """Record one externally measured span from monotonic readings.

        ``start_mono`` is a :meth:`HybridClock.monotonic` instant (the
        daemon times stages with raw ``perf_counter`` and converts
        here); the stored span's ``start`` is its wall-clock mapping.
        """
        span = Span(
            trace_id=trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            name=name,
            start=self.clock.wall_of(start_mono),
            duration=duration,
            parent_id=parent_id,
            request_index=request_index,
            attrs=tuple(attrs),
        )
        self.record(span)
        return span

    def record(self, span: Span) -> None:
        """Append one finished span to the ring + stage histogram."""
        with self._lock:
            self._spans.append(span)
        if self._family is not None:
            timer = self._stage_timers.get(span.name)
            if timer is None:
                timer = self._family.labels(stage=span.name)
                self._stage_timers[span.name] = timer
            timer.observe(
                span.duration,
                (("trace_id", span.trace_id),),
                exemplar_ts=span.end,
            )

    # -- reading -----------------------------------------------------------

    def spans(self) -> List[Span]:
        """All held spans, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._spans)

    def traces(self, last: Optional[int] = None) -> List[dict]:
        """Held spans grouped per trace, as JSON-safe waterfall dicts.

        Each entry: ``trace_id``, ``request_index`` (from any span that
        knows it), wall-clock ``start``, envelope ``duration``, and the
        ``spans`` list sorted by start time — exactly the shape
        :func:`render_waterfall` consumes and ``/traces?format=json``
        serves.  Ordered by first-span arrival; ``last`` keeps only the
        newest N traces.
        """
        grouped: Dict[str, List[Span]] = {}
        order: List[str] = []
        for span in self.spans():
            if span.trace_id not in grouped:
                grouped[span.trace_id] = []
                order.append(span.trace_id)
            grouped[span.trace_id].append(span)
        if last is not None:
            order = order[-last:]
        out = []
        for trace_id in order:
            group = sorted(
                grouped[trace_id], key=lambda s: (s.start, s.name)
            )
            start = min(span.start for span in group)
            end = max(span.end for span in group)
            request_index = next(
                (
                    span.request_index
                    for span in group
                    if span.request_index is not None
                ),
                None,
            )
            out.append({
                "trace_id": trace_id,
                "request_index": request_index,
                "start": start,
                "duration": end - start,
                "spans": [span.to_jsonable() for span in group],
            })
        return out

    def trace(self, trace_id: str) -> Optional[dict]:
        """The waterfall dict for one trace id (prefix match allowed),
        or ``None`` when no held span belongs to it."""
        for entry in self.traces():
            if entry["trace_id"].startswith(trace_id):
                return entry
        return None

    def stage_stats(
        self, quantiles: Sequence[float] = (0.5, 0.95)
    ) -> Dict[str, dict]:
        """Per-stage latency quantiles over the spans currently held.

        Returns ``{stage: {"count": n, "p50": ..., "p95": ...}}`` —
        the ring is bounded, so these are *recent* latencies, which is
        what the ``top`` dashboard's stage column wants.  Stages are
        sorted :data:`SERVICE_STAGES` first, then alphabetically.
        """
        by_stage: Dict[str, List[float]] = {}
        for span in self.spans():
            by_stage.setdefault(span.name, []).append(span.duration)
        rank = {name: i for i, name in enumerate(SERVICE_STAGES)}
        out: Dict[str, dict] = {}
        for stage in sorted(
            by_stage, key=lambda s: (rank.get(s, len(rank)), s)
        ):
            durations = sorted(by_stage[stage])
            entry: dict = {"count": len(durations)}
            for q in quantiles:
                index = min(
                    len(durations) - 1,
                    max(0, math.ceil(q * len(durations)) - 1),
                )
                entry[f"p{round(q * 100):d}"] = durations[index]
            out[stage] = entry
        return out


def _fmt_seconds(value: float) -> str:
    """Human scale for a duration (matches the dashboard's renderer)."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def render_waterfall(trace: dict, width: int = 32) -> str:
    """Render one trace dict (see :meth:`SpanRecorder.traces`) as an
    ASCII waterfall: one positioned bar per span, with duration and
    share of the trace envelope.

    ::

        trace 4bf92f...  request #17  total 3.21ms
          admission  |##..............................|    41us   1.3%
          queue      |..####..........................|   402us  12.5%
          ...
    """
    spans = trace.get("spans", [])
    total = float(trace.get("duration", 0.0))
    t0 = float(trace.get("start", 0.0))
    header = f"trace {trace['trace_id']}"
    if trace.get("request_index") is not None:
        header += f"  request #{trace['request_index']}"
    header += f"  total {_fmt_seconds(total)}"
    lines = [header]
    name_width = max([len(s["name"]) for s in spans] + [9])
    for span in spans:
        offset = float(span["start"]) - t0
        duration = float(span["duration"])
        if total > 0:
            lo = min(width - 1, max(0, int(offset / total * width)))
            hi = int(math.ceil((offset + duration) / total * width))
            hi = min(width, max(hi, lo + 1))
            share = 100.0 * duration / total
        else:  # a zero-length trace still renders (all bars full)
            lo, hi = 0, width
            share = 100.0
        bar = "." * lo + "#" * (hi - lo) + "." * (width - hi)
        lines.append(
            f"  {span['name']:<{name_width}} |{bar}| "
            f"{_fmt_seconds(duration):>9} {share:5.1f}%"
        )
    return "\n".join(lines)
