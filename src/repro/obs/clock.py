"""The hybrid span clock: monotonic durations on a wall-clock anchor.

Tracing needs two things from time that no single stdlib clock gives:

- **durations** must come from a monotonic source (``perf_counter``),
  immune to NTP steps, so stage latencies are trustworthy;
- **timestamps** must be wall-clock seconds since the epoch, so a span
  (or an OpenMetrics exemplar) can say *when* a slow request happened,
  not just how long it took.

:class:`HybridClock` provides both by anchoring one ``time.time()``
epoch reading to one ``perf_counter()`` reading at construction:
``wall_of(mono)`` maps any monotonic instant to wall-clock seconds with
monotonic-grade precision and one syscall per *clock*, not per span.

Determinism guarantees are untouched because the clock is injectable:
anything that stamps wall-clock times accepts a clock argument, tests
pass a :class:`FrozenClock` (advanced manually), and every wall-clock
metric stays in ``*_seconds`` families, which
:meth:`~repro.obs.metrics.MetricsRegistry.deterministic_snapshot`
already excludes.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["HybridClock", "FrozenClock", "default_clock", "set_default_clock"]


class HybridClock:
    """Wall-clock timestamps derived from a monotonic source.

    Args:
        epoch: wall-clock seconds corresponding to ``anchor`` (defaults
            to ``time.time()`` now).
        anchor: the monotonic reading taken at ``epoch`` (defaults to
            ``time.perf_counter()`` now).
    """

    __slots__ = ("_epoch", "_anchor")

    def __init__(
        self,
        epoch: Optional[float] = None,
        anchor: Optional[float] = None,
    ) -> None:
        self._anchor = time.perf_counter() if anchor is None else anchor
        self._epoch = time.time() if epoch is None else epoch

    @property
    def epoch(self) -> float:
        """The wall-clock seconds this clock anchored at."""
        return self._epoch

    def monotonic(self) -> float:
        """A monotonic instant (``perf_counter``) — subtract two for a
        duration."""
        return time.perf_counter()

    def wall_of(self, mono: float) -> float:
        """Map a :meth:`monotonic` instant to wall-clock epoch seconds."""
        return self._epoch + (mono - self._anchor)

    def now(self) -> float:
        """Current wall-clock epoch seconds (via the monotonic anchor)."""
        return self.wall_of(self.monotonic())


class FrozenClock(HybridClock):
    """A deterministic clock for tests: time moves only via :meth:`advance`.

    ``monotonic()`` returns an internal counter starting at ``start``
    (wall-clock epoch seconds), and ``wall_of`` is the identity on that
    counter, so frozen spans get byte-stable timestamps and durations.
    """

    __slots__ = ("_t",)

    def __init__(self, start: float = 1_700_000_000.0) -> None:
        super().__init__(epoch=start, anchor=start)
        self._t = start

    def monotonic(self) -> float:
        """The frozen instant (advances only via :meth:`advance`)."""
        return self._t

    def advance(self, seconds: float) -> float:
        """Move frozen time forward; returns the new instant."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._t += seconds
        return self._t


# The process-wide default, shared by every site that stamps wall-clock
# times without an explicitly injected clock (kept in a one-slot list so
# set_default_clock swaps it atomically under the GIL).
_DEFAULT: list = [HybridClock()]


def default_clock() -> HybridClock:
    """The process-wide clock used when none is injected."""
    return _DEFAULT[0]


def set_default_clock(clock: Optional[HybridClock]) -> HybridClock:
    """Swap the process-wide clock (``None`` restores a fresh real one).

    Returns the previous clock so tests can restore it in a ``finally``.
    """
    previous = _DEFAULT[0]
    _DEFAULT[0] = clock if clock is not None else HybridClock()
    return previous
