"""Declarative alert rules over rolling-window SLO series.

Operators of production caches express health as *rules* — "fire when
cache efficiency stays under 0.5 for 500 requests", "fire on an
eviction storm" — not as ad-hoc report reading.  This module evaluates
such rules against the windowed series a
:class:`~repro.obs.slo.SloTracker` derives, with Prometheus-style
``pending``/``firing``/``resolved`` life-cycle semantics measured in
*requests* (the reproduction's deterministic clock) rather than wall
time.

A rule is ``<series> <op> <threshold> for <N>``: the condition must
hold for ``N`` consecutive evaluations before the alert transitions to
``firing`` (``for 0`` fires immediately); when the condition stops
holding, a firing alert transitions to ``resolved`` and a pending one
quietly resets.  ``nan`` series values (empty window, latency not
measured) never breach.

Evaluation is a pure state machine over its inputs — property-tested to
be deterministic — and *read-only* with respect to the cache: a run
with alerts enabled produces a bit-identical decision sequence to one
without (the same non-perturbation contract tracing honours).
Transitions are exported three ways, mirroring how operators consume
them:

- **metrics** — ``alert_state{alert=...}`` gauge (1 while firing) and
  ``alert_transitions_total{alert=...,state=...}`` counters, visible on
  any ``/metrics`` scrape;
- **JSONL** — :func:`write_transitions` / :func:`read_transitions`, the
  greppable audit log;
- **exit code** — :attr:`AlertEngine.exit_code` is non-zero when any
  rule ever fired, so a CI job can gate on "replay this trace and fail
  if the eviction-storm alert fires".
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = [
    "AlertRule",
    "AlertTransition",
    "AlertEngine",
    "parse_rule",
    "load_rules",
    "write_transitions",
    "read_transitions",
    "DEFAULT_RULES",
]

PathLike = Union[str, Path]

_OPS = {
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "==": lambda value, threshold: value == threshold,
    "!=": lambda value, threshold: value != threshold,
}

_EXPR_RE = re.compile(
    r"^\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*(<=|>=|==|!=|<|>)\s*"
    r"([-+0-9.eE]+)\s*$"
)

#: States an alert can be in.
_INACTIVE, _PENDING, _FIRING = "inactive", "pending", "firing"


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule: ``series op threshold`` held ``for`` N.

    ``for_requests`` counts consecutive breaching *evaluations* (one
    per request when driven from the hot path): the alert fires on the
    N-th consecutive breach; 0 and 1 both fire on the first.
    """

    name: str
    series: str
    op: str
    threshold: float
    for_requests: int = 0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}")
        if self.for_requests < 0:
            raise ValueError("for_requests must be non-negative")

    @property
    def expr(self) -> str:
        """The rule condition back as its ``series op threshold`` text."""
        return f"{self.series} {self.op} {self.threshold:g}"

    def breaches(self, values: Mapping[str, float]) -> bool:
        """Whether the condition holds for one set of series values.

        Missing or ``nan`` series never breach — an empty window is
        silence, not an incident.
        """
        value = values.get(self.series)
        if value is None or math.isnan(value):
            return False
        return _OPS[self.op](value, self.threshold)

    def to_jsonable(self) -> dict:
        """JSON-safe dict form (the rule-file entry format)."""
        return {
            "name": self.name,
            "expr": self.expr,
            "for": self.for_requests,
        }


@dataclass(frozen=True)
class AlertTransition:
    """One alert state change: the audit-log record."""

    rule: str
    state: str  # "pending" | "firing" | "resolved"
    request_index: int
    value: float

    def to_jsonable(self) -> dict:
        """JSON-safe dict form (one JSONL line)."""
        return {
            "rule": self.rule,
            "state": self.state,
            "request_index": self.request_index,
            "value": self.value,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "AlertTransition":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            rule=data["rule"],
            state=data["state"],
            request_index=data["request_index"],
            value=data["value"],
        )


def parse_rule(data: "Union[dict, str]", index: int = 0) -> AlertRule:
    """Build an :class:`AlertRule` from a rule-file entry.

    An entry is a dict ``{"name": ..., "expr": "series op threshold",
    "for": N}`` (``name`` defaults to a slug of the expression, ``for``
    to 0) or a bare expression string.
    """
    if isinstance(data, str):
        data = {"expr": data}
    expr = data.get("expr")
    if not expr:
        raise ValueError(f"alert rule #{index} has no 'expr'")
    match = _EXPR_RE.match(expr)
    if not match:
        raise ValueError(
            f"unparseable alert expression {expr!r} "
            "(expected: <series> <op> <threshold>)"
        )
    series, op, threshold = match.groups()
    name = data.get("name") or re.sub(r"\s+", "-", expr.strip())
    return AlertRule(
        name=name,
        series=series,
        op=op,
        threshold=float(threshold),
        for_requests=int(data.get("for", 0)),
    )


def load_rules(path: PathLike) -> List[AlertRule]:
    """Load a JSON rule file: a list of rule entries (see
    :func:`parse_rule`), or ``{"rules": [...]}``.

    Duplicate rule names are rejected — the name keys the state machine
    and every export.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(raw, dict):
        raw = raw.get("rules", [])
    if not isinstance(raw, list):
        raise ValueError(f"alert rule file {path}: expected a JSON list")
    rules = [parse_rule(entry, i) for i, entry in enumerate(raw)]
    seen = set()
    for rule in rules:
        if rule.name in seen:
            raise ValueError(f"duplicate alert rule name {rule.name!r}")
        seen.add(rule.name)
    return rules


#: The default operational rule set (used by Figure 5's narrative and
#: as a starting point for sites): a sustained cache-efficiency slump
#: and an eviction storm.
DEFAULT_RULES: Sequence[AlertRule] = (
    AlertRule("low-cache-efficiency", "cache_efficiency", "<", 0.5, 50),
    AlertRule("eviction-storm", "eviction_rate", ">", 0.5, 25),
)


class _RuleState:
    __slots__ = ("state", "breaching_for")

    def __init__(self) -> None:
        self.state = _INACTIVE
        self.breaching_for = 0


class AlertEngine:
    """Evaluates alert rules and tracks their firing life-cycle.

    Call :meth:`evaluate` once per request (the CLI and simulator do
    this wherever an :class:`~repro.obs.slo.SloTracker` is attached);
    it returns the transitions that evaluation caused and appends them
    to :attr:`transitions`.  Attach a registry to also export state as
    metrics.
    """

    def __init__(
        self,
        rules: Iterable[AlertRule] = DEFAULT_RULES,
        registry=None,
    ) -> None:
        self.rules: List[AlertRule] = list(rules)
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        if len(self._states) != len(self.rules):
            raise ValueError("duplicate alert rule names")
        self.transitions: List[AlertTransition] = []
        self.fired_ever = False
        self._state_gauge = None
        self._transition_counter = None
        if registry is not None:
            self.enable_metrics(registry)

    def enable_metrics(self, registry) -> None:
        """Export alert state into ``registry`` from now on."""
        self._state_gauge = registry.gauge(
            "alert_state",
            "1 while the alert is firing, 0 otherwise.",
            labelnames=("alert",),
        )
        self._transition_counter = registry.counter(
            "alert_transitions_total",
            "Alert life-cycle transitions, by rule and new state.",
            labelnames=("alert", "state"),
        )
        for rule in self.rules:
            state = self._states[rule.name].state
            self._state_gauge.set(
                1 if state == _FIRING else 0, alert=rule.name
            )

    def evaluate(
        self, values: Mapping[str, float], request_index: int
    ) -> List[AlertTransition]:
        """Advance every rule's state machine by one observation.

        ``values`` is a series→value mapping (normally
        ``SloTracker.values()``); ``request_index`` stamps any
        transitions.  Deterministic: the same sequence of calls always
        yields the same transitions.
        """
        out: List[AlertTransition] = []

        def emit(rule: AlertRule, state: str) -> None:
            transition = AlertTransition(
                rule=rule.name,
                state=state,
                request_index=request_index,
                value=float(values.get(rule.series, float("nan"))),
            )
            out.append(transition)
            self.transitions.append(transition)
            if self._transition_counter is not None:
                self._transition_counter.inc(alert=rule.name, state=state)
            if self._state_gauge is not None:
                self._state_gauge.set(
                    1 if state == _FIRING else 0, alert=rule.name
                )

        for rule in self.rules:
            rs = self._states[rule.name]
            if rule.breaches(values):
                rs.breaching_for += 1
                if rs.state == _FIRING:
                    continue
                if rs.breaching_for >= max(rule.for_requests, 1):
                    rs.state = _FIRING
                    self.fired_ever = True
                    emit(rule, _FIRING)
                elif rs.state == _INACTIVE:
                    rs.state = _PENDING
                    emit(rule, _PENDING)
            else:
                rs.breaching_for = 0
                if rs.state == _FIRING:
                    rs.state = _INACTIVE
                    emit(rule, "resolved")
                elif rs.state == _PENDING:
                    rs.state = _INACTIVE
        return out

    def firing(self) -> List[str]:
        """Names of the rules currently firing, in rule order."""
        return [
            rule.name
            for rule in self.rules
            if self._states[rule.name].state == _FIRING
        ]

    def state_of(self, name: str) -> str:
        """Current life-cycle state of one rule by name."""
        return self._states[name].state

    @property
    def exit_code(self) -> int:
        """0 when no rule ever fired, 1 otherwise (the CI gate)."""
        return 1 if self.fired_ever else 0

    def summary(self) -> List[dict]:
        """One JSON-safe status row per rule (the ``/statusz`` shape)."""
        return [
            {
                "name": rule.name,
                "expr": rule.expr,
                "for": rule.for_requests,
                "state": self._states[rule.name].state,
            }
            for rule in self.rules
        ]


def write_transitions(
    transitions: Iterable[AlertTransition],
    path: PathLike,
    append: bool = False,
) -> Path:
    """Write transitions as JSON-lines (the alert audit log)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as fh:
        for transition in transitions:
            fh.write(
                json.dumps(transition.to_jsonable(), sort_keys=True) + "\n"
            )
    return path


def read_transitions(path: PathLike) -> List[AlertTransition]:
    """Read a JSONL transition log back (inverse of
    :func:`write_transitions`)."""
    out: List[AlertTransition] = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(AlertTransition.from_jsonable(json.loads(line)))
    return out
