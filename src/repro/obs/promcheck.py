"""Strict validator for the Prometheus text exposition subset we emit.

Lives in the package (not the test tree) so the same checker guards
three surfaces: the unit tests over ``MetricsRegistry.to_prometheus``,
the CI serve-and-scrape smoke step (``python -m repro.obs.promcheck``
over a curl'ed ``/metrics`` body), and ad-hoc operator debugging.

Checked properties: every sample line parses; every sample is preceded
by a ``# TYPE`` declaration of a known kind; histogram bucket counts
are cumulative, end at ``le="+Inf"``, and equal ``_count``.
"""

from __future__ import annotations

import re
import sys

__all__ = ["validate_prometheus_text", "main"]

_SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")


def validate_prometheus_text(text: str) -> None:
    """Assert ``text`` is well-formed exposition output; raise on drift.

    Raises :class:`AssertionError` naming the offending line or
    histogram; returns ``None`` on success.
    """
    typed = {}
    for line in text.strip().split("\n"):
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in {"counter", "gauge", "histogram"}
            typed[name] = kind
            continue
        assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"
        name = re.split(r"[{ ]", line, 1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or base in typed, f"sample before TYPE: {line!r}"
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        # Bucket series are cumulative *per label child* — a labelled
        # family (e.g. landlord_request_seconds{engine=...,batched=...})
        # interleaves several independent cumulative series, so group by
        # the label set minus the ``le`` bound (rendered last).
        children = {}
        for labels, le, count in re.findall(
            rf'^{name}_bucket{{(?:(.*),)?le="([^"]+)"}} (\d+)$', text, re.M
        ):
            children.setdefault(labels or "", []).append((le, int(count)))
        assert children, f"histogram {name} has no buckets"
        for child, series in children.items():
            counts = [c for _, c in series]
            label = f"{name}{{{child}}}" if child else name
            assert counts == sorted(counts), f"{label} buckets not cumulative"
            assert series[-1][0] == "+Inf", f"{label} missing +Inf bucket"
            count_re = (
                rf"^{name}_count{{{re.escape(child)}}} (\d+)$"
                if child
                else rf"^{name}_count (\d+)$"
            )
            (total,) = re.findall(count_re, text, re.M)
            assert int(total) == counts[-1], f"{label} count != +Inf bucket"


def main(argv=None) -> int:
    """Validate a scrape body given as a file argument (or stdin)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv:
        text = open(argv[0], encoding="utf-8").read()
    else:
        text = sys.stdin.read()
    try:
        validate_prometheus_text(text)
    except AssertionError as exc:
        print(f"invalid exposition format: {exc}", file=sys.stderr)
        return 1
    print("exposition format ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
