"""Strict validators for the exposition formats we emit.

Lives in the package (not the test tree) so the same checkers guard
three surfaces: the unit tests over ``MetricsRegistry.to_prometheus`` /
``to_openmetrics``, the CI serve-and-scrape smoke steps
(``python -m repro.obs.promcheck`` over a curl'ed ``/metrics`` body),
and ad-hoc operator debugging.

Checked properties, classic Prometheus text: every sample line parses;
every sample is preceded by a ``# TYPE`` declaration of a known kind;
histogram bucket counts are cumulative *per label child*, end at
``le="+Inf"``, and equal ``_count``.

OpenMetrics adds: the body terminates with ``# EOF`` (and nothing
follows it); counter samples use the ``_total`` / ``_created`` suffixes
while the ``# TYPE`` name does not; exemplars
(`` # {labels} value [timestamp]``) appear only on histogram
``_bucket`` or counter ``_total`` samples, parse, keep their label set
within the 128-rune spec limit, and carry their value — and optional
wall-clock timestamp, strictly *after* the value — as finite float
seconds.  A timestamp before the value, or two timestamps, cannot
match the sample grammar and is rejected as unparseable.
"""

from __future__ import annotations

import math
import re
import sys

__all__ = [
    "validate_openmetrics_text",
    "validate_prometheus_text",
    "main",
]

_SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")

# An OpenMetrics sample with an optional exemplar:
#   name{labels} value [# {exemplar-labels} exemplar-value [timestamp]]
# The grammar fixes the ordering (value first, at most one timestamp);
# token *contents* are validated in code so a malformed float gets a
# named assertion instead of a generic parse failure.
_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)"
    r"(?P<exemplar> # \{(?P<exlabels>[^}]*)\} (?P<exvalue>[^ ]+)"
    r"(?: (?P<exts>[^ ]+))?)?$"
)

_EXEMPLAR_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)

# OpenMetrics caps an exemplar's combined label names + values length.
EXEMPLAR_MAX_RUNES = 128


def _check_histograms(text: str, typed: dict) -> None:
    """Shared histogram checks: cumulative buckets per label child,
    terminal ``+Inf``, ``_count`` agreement (both formats)."""
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        # Bucket series are cumulative *per label child* — a labelled
        # family (e.g. landlord_request_seconds{engine=...,batched=...})
        # interleaves several independent cumulative series, so group by
        # the label set minus the ``le`` bound (rendered last).
        children = {}
        for labels, le, count in re.findall(
            rf'^{name}_bucket{{(?:(.*),)?le="([^"]+)"}} (\d+)', text, re.M
        ):
            children.setdefault(labels or "", []).append((le, int(count)))
        assert children, f"histogram {name} has no buckets"
        for child, series in children.items():
            counts = [c for _, c in series]
            label = f"{name}{{{child}}}" if child else name
            assert counts == sorted(counts), f"{label} buckets not cumulative"
            assert series[-1][0] == "+Inf", f"{label} missing +Inf bucket"
            count_re = (
                rf"^{name}_count{{{re.escape(child)}}} (\d+)$"
                if child
                else rf"^{name}_count (\d+)$"
            )
            (total,) = re.findall(count_re, text, re.M)
            assert int(total) == counts[-1], f"{label} count != +Inf bucket"


def validate_prometheus_text(text: str) -> None:
    """Assert ``text`` is well-formed classic exposition; raise on drift.

    Raises :class:`AssertionError` naming the offending line or
    histogram; returns ``None`` on success.  An empty body is legal
    (a registry with no families scrapes as zero bytes).
    """
    if not text.strip():
        return
    typed = {}
    for line in text.strip().split("\n"):
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in {"counter", "gauge", "histogram"}
            typed[name] = kind
            continue
        assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"
        name = re.split(r"[{ ]", line, 1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or base in typed, f"sample before TYPE: {line!r}"
    _check_histograms(text, typed)


def validate_openmetrics_text(text: str) -> None:
    """Assert ``text`` is well-formed OpenMetrics exposition.

    Raises :class:`AssertionError` naming the offending line; returns
    ``None`` on success.
    """
    lines = text.strip().split("\n")
    assert lines and lines[-1] == "# EOF", "missing terminal # EOF marker"
    typed = {}
    for line in lines[:-1]:
        assert line != "# EOF", "# EOF before the end of the body"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in {"counter", "gauge", "histogram"}
            assert not (
                kind == "counter" and name.endswith("_total")
            ), f"counter TYPE keeps _total suffix: {line!r}"
            typed[name] = kind
            continue
        match = _OM_SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count|total|created)$", "", name)
        kind = typed.get(name) or typed.get(base)
        assert kind is not None, f"sample before TYPE: {line!r}"
        if kind == "counter":
            assert re.search(r"_(total|created)$", name), (
                f"counter sample without _total/_created suffix: {line!r}"
            )
        if match.group("exemplar"):
            assert (
                name.endswith("_bucket") and kind == "histogram"
            ) or (
                name.endswith("_total") and kind == "counter"
            ), f"exemplar on a non-bucket/total sample: {line!r}"
            exlabels = match.group("exlabels")
            pairs = _EXEMPLAR_LABEL_RE.findall(exlabels)
            reconstructed = ",".join(f'{k}="{v}"' for k, v in pairs)
            assert reconstructed == exlabels, (
                f"malformed exemplar label set: {line!r}"
            )
            runes = sum(len(k) + len(v) for k, v in pairs)
            assert runes <= EXEMPLAR_MAX_RUNES, (
                f"exemplar label set exceeds {EXEMPLAR_MAX_RUNES} runes "
                f"({runes}): {line!r}"
            )
            try:
                exvalue = float(match.group("exvalue"))
            except ValueError:
                exvalue = float("nan")
            assert math.isfinite(exvalue), (
                f"exemplar value not a finite float: {line!r}"
            )
            ts = match.group("exts")
            if ts is not None:
                try:
                    ts_value = float(ts)
                except ValueError:
                    ts_value = float("nan")
                assert math.isfinite(ts_value), (
                    f"exemplar timestamp not finite float seconds: {line!r}"
                )
                assert ts_value >= 0, (
                    f"exemplar timestamp before the epoch: {line!r}"
                )
    _check_histograms("\n".join(lines[:-1]), typed)


def main(argv=None) -> int:
    """Validate a scrape body from a file argument (or stdin).

    ``--openmetrics`` forces the OpenMetrics validator; the default
    auto-detects on the terminal ``# EOF`` marker.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    force_openmetrics = False
    if "--openmetrics" in argv:
        force_openmetrics = True
        argv.remove("--openmetrics")
    if argv:
        text = open(argv[0], encoding="utf-8").read()
    else:
        text = sys.stdin.read()
    openmetrics = force_openmetrics or text.strip().endswith("# EOF")
    checker = (
        validate_openmetrics_text if openmetrics else validate_prometheus_text
    )
    try:
        checker(text)
    except AssertionError as exc:
        kind = "openmetrics" if openmetrics else "prometheus"
        print(f"invalid {kind} exposition format: {exc}", file=sys.stderr)
        return 1
    print(
        "exposition format ok "
        f"({'openmetrics' if openmetrics else 'prometheus'})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
