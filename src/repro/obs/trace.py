"""Decision tracing: why did the cache hit, merge, or insert?

Figures 4–6 show *what* the LANDLORD cache did; a surprising merge or a
storm of capacity evictions raises the question of *why*.  When a
:class:`DecisionTracer` is attached to a ``LandlordCache`` (via
``enable_tracing``), every request records a structured
:class:`RequestTrace`: the candidates the merge scan considered with
their Jaccard distances and outcomes, conflict rejections, the chosen
operation, and any eviction victims with the reason (capacity vs.
idle).  :meth:`RequestTrace.explain` renders this as a human-readable
narrative, surfaced on the CLI as ``repro-landlord explain <index>``.

Tracing must never perturb behaviour — the traced and untraced decision
sequences are asserted bit-identical in the test suite — so the tracer
only *records*; it owns no policy state and the cache never reads from
it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..util.units import format_bytes

__all__ = [
    "TracedCandidate",
    "TracedEviction",
    "RequestTrace",
    "DecisionTracer",
    "write_traces",
    "read_traces",
]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TracedCandidate:
    """One image the merge scan examined for a request.

    ``outcome`` is ``"merged"`` (chosen), ``"conflict"`` (within α but
    rejected by the package-conflict check), or ``"unused"`` (examined
    but not chosen — another candidate won or all were rejected).
    """

    image_id: int
    distance: float
    size: int
    outcome: str

    def to_jsonable(self) -> dict:
        """JSON-safe dict form."""
        return {
            "image_id": self.image_id,
            "distance": self.distance,
            "size": self.size,
            "outcome": self.outcome,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TracedCandidate":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            image_id=data["image_id"],
            distance=data["distance"],
            size=data["size"],
            outcome=data["outcome"],
        )


@dataclass(frozen=True)
class TracedEviction:
    """One image evicted while serving (or idling out after) a request.

    ``reason`` is ``"capacity"`` (evicted to fit the request under the
    byte budget) or ``"idle"`` (aged out by ``evict_idle``).
    """

    image_id: int
    size: int
    reason: str

    def to_jsonable(self) -> dict:
        """JSON-safe dict form."""
        return {"image_id": self.image_id, "size": self.size,
                "reason": self.reason}

    @classmethod
    def from_jsonable(cls, data: dict) -> "TracedEviction":
        """Inverse of :meth:`to_jsonable`."""
        return cls(image_id=data["image_id"], size=data["size"],
                   reason=data["reason"])


@dataclass(frozen=True)
class RequestTrace:
    """The full decision record for one cache request."""

    request_index: int
    n_packages: int
    requested_bytes: int
    alpha: float
    images_scanned: int
    action: str
    image_id: int
    image_bytes: int
    distance: Optional[float] = None
    bytes_added: int = 0
    candidates: Tuple[TracedCandidate, ...] = ()
    evictions: Tuple[TracedEviction, ...] = ()
    #: The distributed trace this request was served under (set by the
    #: service daemon via :meth:`DecisionTracer.link_trace`); resolves
    #: to a pipeline waterfall through ``repro-landlord trace``.
    trace_id: Optional[str] = None

    def explain(self) -> str:
        """Render a human-readable narrative of this decision."""
        lines = [
            f"request #{self.request_index}: {self.n_packages} packages, "
            f"{format_bytes(self.requested_bytes)} requested "
            f"(alpha={self.alpha:g})",
        ]
        if self.action == "hit":
            lines.append(
                f"  HIT image {self.image_id} "
                f"({format_bytes(self.image_bytes)}): an existing image "
                "already contains every requested package "
                f"(scanned {self.images_scanned} images)."
            )
        elif self.action == "merge":
            lines.append(
                f"  MERGE into image {self.image_id}: rewrote "
                f"{format_bytes(self.image_bytes)} to add "
                f"{format_bytes(self.bytes_added)} of new packages."
            )
        else:
            lines.append(
                f"  INSERT image {self.image_id} "
                f"({format_bytes(self.image_bytes)}): no hit and no "
                "mergeable candidate."
            )
        if self.candidates:
            lines.append(
                f"  candidates within alpha ({len(self.candidates)} "
                f"of {self.images_scanned} scanned):"
            )
            for cand in self.candidates:
                note = {
                    "merged": "chosen (closest non-conflicting)",
                    "conflict": "rejected: package version conflict",
                    "unused": "not chosen",
                }[cand.outcome]
                lines.append(
                    f"    image {cand.image_id}: distance "
                    f"{cand.distance:.3f}, {format_bytes(cand.size)} "
                    f"-- {note}"
                )
        elif self.action == "insert":
            lines.append(
                f"  candidates within alpha: none "
                f"(scanned {self.images_scanned} images)."
            )
        if self.distance is not None and self.action == "merge":
            lines.append(f"  chosen Jaccard distance: {self.distance:.3f}")
        for ev in self.evictions:
            why = (
                "to fit under the byte capacity"
                if ev.reason == "capacity"
                else "idle too long"
            )
            lines.append(
                f"  EVICTED image {ev.image_id} "
                f"({format_bytes(ev.size)}): {why}."
            )
        if self.trace_id is not None:
            lines.append(
                f"  trace {self.trace_id} "
                "(pipeline waterfall: repro-landlord trace "
                f"{self.trace_id[:8]} --url <daemon>)"
            )
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        """JSON-safe dict form (for the ``.trace.jsonl`` sidecar)."""
        return {
            "request_index": self.request_index,
            "n_packages": self.n_packages,
            "requested_bytes": self.requested_bytes,
            "alpha": self.alpha,
            "images_scanned": self.images_scanned,
            "action": self.action,
            "image_id": self.image_id,
            "image_bytes": self.image_bytes,
            "distance": self.distance,
            "bytes_added": self.bytes_added,
            "candidates": [c.to_jsonable() for c in self.candidates],
            "evictions": [e.to_jsonable() for e in self.evictions],
            **(
                {"trace_id": self.trace_id}
                if self.trace_id is not None
                else {}
            ),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "RequestTrace":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            request_index=data["request_index"],
            n_packages=data["n_packages"],
            requested_bytes=data["requested_bytes"],
            alpha=data["alpha"],
            images_scanned=data["images_scanned"],
            action=data["action"],
            image_id=data["image_id"],
            image_bytes=data["image_bytes"],
            distance=data.get("distance"),
            bytes_added=data.get("bytes_added", 0),
            candidates=tuple(
                TracedCandidate.from_jsonable(c)
                for c in data.get("candidates", ())
            ),
            evictions=tuple(
                TracedEviction.from_jsonable(e)
                for e in data.get("evictions", ())
            ),
            trace_id=data.get("trace_id"),
        )


class DecisionTracer:
    """Collects :class:`RequestTrace` records from a ``LandlordCache``.

    Traces are keyed by request index.  ``limit`` bounds memory on long
    streams by keeping only the most recent N traces; :meth:`drain`
    hands out (and forgets the "new" status of) traces recorded since
    the last drain, which is how the CLI appends to a sidecar file
    across ``submit`` invocations.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError("limit must be positive (or None)")
        self._limit = limit
        self._traces: Dict[int, RequestTrace] = {}
        self._undrained: List[int] = []

    def __len__(self) -> int:
        return len(self._traces)

    def on_request(self, trace: RequestTrace) -> None:
        """Record the trace for one completed request (cache hook)."""
        self._traces[trace.request_index] = trace
        self._undrained.append(trace.request_index)
        if self._limit is not None and len(self._traces) > self._limit:
            oldest = min(self._traces)
            del self._traces[oldest]

    def on_idle_eviction(
        self, request_index: int, image_id: int, size: int
    ) -> None:
        """Attach an ``evict_idle`` victim to its request's trace."""
        trace = self._traces.get(request_index)
        eviction = TracedEviction(image_id=image_id, size=size, reason="idle")
        if trace is None:
            return
        object.__setattr__(
            trace, "evictions", trace.evictions + (eviction,)
        )

    def on_adoption_evictions(
        self,
        request_index: int,
        evictions: "Tuple[TracedEviction, ...]",
    ) -> None:
        """Attach capacity evictions forced by an ``adopt()`` call.

        An adoption has no request of its own, so its victims — already
        built as :class:`TracedEviction` records by the eviction loop —
        join the trace of the last completed request, mirroring how
        ``evict_idle`` victims are recorded.
        """
        trace = self._traces.get(request_index)
        if trace is None:
            return
        object.__setattr__(
            trace, "evictions", trace.evictions + tuple(evictions)
        )

    def link_trace(self, request_index: int, trace_id: str) -> None:
        """Cross-link a request's decision record to its distributed
        trace id (the service daemon calls this once the batcher knows
        which request index a submission landed on, *before* the record
        is drained to the sidecar)."""
        trace = self._traces.get(request_index)
        if trace is not None:
            object.__setattr__(trace, "trace_id", trace_id)

    def trace(self, request_index: int) -> Optional[RequestTrace]:
        """The trace for one request index, or ``None`` if not held."""
        return self._traces.get(request_index)

    def explain(self, request_index: int) -> str:
        """Human-readable narrative for one request index."""
        trace = self._traces.get(request_index)
        if trace is None:
            held = sorted(self._traces)
            span = (
                f" (holding {held[0]}..{held[-1]})" if held else " (empty)"
            )
            return f"no trace recorded for request #{request_index}{span}"
        return trace.explain()

    def traces(self) -> List[RequestTrace]:
        """All held traces in request-index order."""
        return [self._traces[i] for i in sorted(self._traces)]

    def drain(self) -> List[RequestTrace]:
        """Traces recorded since the last drain, in recording order."""
        out = [
            self._traces[i] for i in self._undrained if i in self._traces
        ]
        self._undrained = []
        return out


def write_traces(
    traces: Iterable[RequestTrace], path: PathLike, append: bool = False
) -> Path:
    """Write traces as JSON-lines (one :meth:`RequestTrace.to_jsonable`
    per line); ``append`` accumulates across CLI invocations."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as fh:
        for trace in traces:
            fh.write(json.dumps(trace.to_jsonable(), sort_keys=True) + "\n")
    return path


def read_traces(path: PathLike) -> Dict[int, RequestTrace]:
    """Read a JSONL trace file into a dict keyed by request index.

    Later lines win on duplicate indices, so an appended sidecar that
    re-traced an index (e.g. after a state reset) resolves to the most
    recent record.
    """
    traces: Dict[int, RequestTrace] = {}
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            trace = RequestTrace.from_jsonable(json.loads(line))
            traces[trace.request_index] = trace
    return traces
