"""`repro-landlord top` — a `top`-style dashboard over a live LANDLORD.

Two data sources, one renderer:

- **attach** — poll a running ``submit --serve`` endpoint's ``/statusz``
  (see :mod:`repro.obs.server`) and redraw;
- **replay** — drive the frames from a recorded ``--events-out`` JSONL
  stream at any speed, with no terminal required (``--headless`` prints
  frames; CI's golden-frame test runs exactly this path).

The renderer (:func:`render_frame`) is a pure function from one
``/statusz``-shaped dict (plus an optional series history for the
sparkline band, drawn with :mod:`repro.util.asciiplot`) to a text
frame, so frames are deterministic whenever their inputs are — replay
frames contain no wall-clock series and golden-test cleanly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..util.asciiplot import Series, line_plot
from ..util.units import format_bytes
from .slo import DEFAULT_WINDOW, SloTracker

__all__ = [
    "render_frame",
    "frames_from_events",
    "EventReplay",
    "HISTORY_SERIES",
]

#: The windowed series charted in the frame's history band.
HISTORY_SERIES: Tuple[str, ...] = ("hit_rate", "merge_rate", "occupancy")


def _pct(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{100.0 * value:.1f}%"


def _seconds(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _count(value) -> str:
    """Integral counter values render without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _bar(fraction: Optional[float], width: int = 24) -> str:
    if fraction is None or (
        isinstance(fraction, float) and math.isnan(fraction)
    ):
        return "[" + "?" * width + "]"
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_frame(
    status: dict,
    width: int = 76,
    history: Optional[Dict[str, List[float]]] = None,
    title: str = "repro-landlord top",
) -> str:
    """Render one dashboard frame from a ``/statusz``-shaped dict.

    ``history`` maps series names (see :data:`HISTORY_SERIES`) to their
    values over past frames; when at least two points exist they are
    charted as a sparkline band under the status rows.  Unknown values
    (absent keys, ``None``) render as ``-`` so a frame never fails on a
    sparse status.  A ``telemetry`` block (present when a fleet run is
    pushing worker snapshots — see :mod:`repro.obs.telemetry`) adds one
    row per reporting worker with its request mix and push progress.
    A ``stages`` block (present when a daemon is recording pipeline
    spans — see :mod:`repro.obs.spans`) adds a per-stage p95 row
    (queue / fsync / apply wait).  An ``engine`` block (or a
    ``service.batch_governor`` entry) adds a governor row showing the
    adaptive batch size, its AIMD step mix, the last window's dirty
    rate, and live-row compaction counters.
    """
    lifetime = status.get("lifetime", {})
    window = status.get("window", {})
    series = window.get("series", {})
    alpha = status.get("alpha")
    capacity = status.get("capacity_bytes")
    cached = status.get("cached_bytes")
    unique = status.get("unique_bytes")
    occupancy = status.get("occupancy")

    head = (
        f"{title} — request {lifetime.get('requests', 0)}"
        f"   alpha {alpha if alpha is not None else '-'}"
        f"   window {window.get('size', '-')}"
    )
    lines = [head, "=" * min(width, len(head) + 4)]

    cap_text = format_bytes(capacity) if capacity else "-"
    cached_text = format_bytes(cached) if cached is not None else "-"
    unique_text = format_bytes(unique) if unique is not None else "-"
    lines.append(
        f"occupancy {_bar(occupancy)} {_pct(occupancy)}"
        f"   images {status.get('images', '-')}"
        f"   cached {cached_text} / {cap_text}   unique {unique_text}"
    )
    lines.append(
        f"efficiency   cache {_pct(status.get('cache_efficiency'))}"
        f"   container {_pct(lifetime.get('container_efficiency'))}"
        f"   lifetime hit rate {_pct(lifetime.get('hit_rate'))}"
    )
    mix = (
        f"window mix   hit {_pct(series.get('hit_rate'))}"
        f"   merge {_pct(series.get('merge_rate'))}"
        f"   insert {_pct(series.get('insert_rate'))}"
    )
    ev_rate = series.get("eviction_rate")
    if ev_rate is not None and not math.isnan(ev_rate):
        mix += f"   evict/req {ev_rate:.3f}"
    lines.append(mix)
    wr = series.get("write_bytes_per_request")
    rq = series.get("requested_bytes_per_request")
    lines.append(
        "window io    requested "
        f"{format_bytes(rq) + '/req' if rq is not None else '-'}"
        "   written "
        f"{format_bytes(wr) + '/req' if wr is not None else '-'}"
    )
    lines.append(
        f"latency      p50 {_seconds(series.get('latency_p50'))}"
        f"   p95 {_seconds(series.get('latency_p95'))}"
        f"   p99 {_seconds(series.get('latency_p99'))}"
    )
    stages = status.get("stages") or {}
    if stages:
        def _stage_p95(stage: str) -> str:
            entry = stages.get(stage) or {}
            return _seconds(entry.get("p95"))

        lines.append(
            f"stages p95   queue {_stage_p95('queue')}"
            f"   fsync {_stage_p95('fsync')}"
            f"   apply {_stage_p95('apply')}"
        )
    engine = status.get("engine") or {}
    service = status.get("service") or {}
    governor = engine.get("batch_governor") or service.get("batch_governor")
    batch = engine.get("batch") or {}
    compaction = engine.get("compaction") or {}
    if governor or batch.get("windows") or compaction.get("compactions"):
        if governor:
            row = (
                f"governor     batch {governor.get('size', '-')}"
                f"   +{governor.get('increases', 0)}"
                f" x{governor.get('decreases', 0)}"
                f" ={governor.get('holds', 0)}"
            )
        else:
            row = "governor     batch -"
        dirty = batch.get("last_dirty_rate")
        if dirty is not None:
            row += f"   dirty {_pct(dirty)}"
        row += (
            f"   compactions {compaction.get('compactions', 0)}"
            f" ({_count(compaction.get('rows_reclaimed', 0))} rows)"
        )
        lines.append(row)
    alerts = status.get("alerts")
    if alerts is not None:
        parts = []
        for alert in alerts:
            state = alert.get("state", "inactive")
            tag = {
                "firing": "FIRING",
                "pending": "pending",
            }.get(state, "ok")
            parts.append(f"[{tag}] {alert['name']}")
        lines.append("alerts       " + ("   ".join(parts) or "(none)"))

    telemetry = status.get("telemetry") or {}
    workers = telemetry.get("workers") or {}
    if workers:
        cells = telemetry.get("cells") or {}
        head = f"workers      {len(workers)} reporting"
        expected = cells.get("expected")
        if expected:
            head += (
                f"   cells {cells.get('folded', 0)}/{expected} folded"
            )
        if telemetry.get("complete"):
            head += "   [complete]"
        lines.append(head)
        for worker in sorted(workers):
            entry = workers[worker]
            row = f"  {worker:<12.12s}"
            for short, label in (
                ("requests", "req"), ("hits", "hit"),
                ("merges", "mrg"), ("inserts", "ins"),
                ("evictions", "evt"),
            ):
                value = entry.get(short)
                if value is not None:
                    row += f" {label} {_count(value)}"
            row += f"   pushes {entry.get('pushes', 0)}"
            if entry.get("final"):
                row += "   done"
            lines.append(row)

    if history:
        charted = [
            Series(name=name, xs=list(range(len(values))), ys=values)
            for name, values in history.items()
            if len([v for v in values if not math.isnan(v)]) >= 2
        ]
        if charted:
            lines.append("")
            lines.append(
                line_plot(
                    charted,
                    width=width - 10,
                    height=8,
                    title="windowed series over time",
                    xlabel="frame",
                )
            )
    return "\n".join(lines)


class EventReplay:
    """Reconstructs dashboard state from a ``CacheEvent`` JSONL stream.

    Feeds an :class:`~repro.obs.slo.SloTracker` (and optionally an
    :class:`~repro.obs.alerts.AlertEngine`) exactly as the live hot
    path would, except latency is unknown (``None``) and unique bytes
    cannot be reconstructed; cached bytes are tracked from per-image
    sizes the way
    :func:`repro.analysis.report.timeline_from_events` does.  Evictions
    follow their triggering decision in the stream, so each decision is
    folded in when the *next* one arrives (or at :meth:`flush`).
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        alerts=None,
        capacity: Optional[int] = None,
        alpha: Optional[float] = None,
    ) -> None:
        from ..core.cache import CacheStats

        self.slo = SloTracker(window=window)
        if capacity is not None:
            self.slo.configure(capacity, alpha if alpha is not None else 0.0)
        self.alerts = alerts
        self.capacity = capacity
        self.alpha = alpha
        self.stats = CacheStats()
        self._sizes: Dict[str, int] = {}
        self._pending = None  # (event, evictions) awaiting its victims

    def _fold_pending(self) -> None:
        if self._pending is None:
            return
        event, evictions = self._pending
        self._pending = None
        self.slo.on_request(
            action=event.kind.value,
            requested_bytes=event.requested_bytes or 0,
            bytes_written=event.bytes_written,
            used_bytes=event.image_bytes,
            evictions=evictions,
            latency_s=None,
            cached_bytes=sum(self._sizes.values()),
            unique_bytes=None,
            images=len(self._sizes),
        )
        if self.alerts is not None:
            self.alerts.evaluate(self.slo.values(), self.stats.requests - 1)

    def feed(self, event) -> None:
        """Fold one event into the replay state."""
        from ..core.events import EventKind

        if event.kind is EventKind.DELETE:
            self.stats.deletes += 1
            if event.reason == "idle":
                self.stats.evictions_idle += 1
            else:
                self.stats.evictions_capacity += 1
            self._sizes.pop(event.image_id, None)
            if self._pending is not None:
                self._pending = (self._pending[0], self._pending[1] + 1)
            return
        self._fold_pending()
        self.stats.requests += 1
        self.stats.requested_bytes += event.requested_bytes or 0
        self.stats.used_bytes += event.image_bytes
        self.stats.candidates_examined += event.candidates_examined
        self.stats.conflicts_skipped += event.conflicts_skipped
        self._sizes[event.image_id] = event.image_bytes
        if event.kind is EventKind.HIT:
            self.stats.hits += 1
        elif event.kind is EventKind.MERGE:
            self.stats.merges += 1
            self.stats.bytes_written += event.bytes_written
        else:
            self.stats.inserts += 1
            self.stats.bytes_written += event.bytes_written
        self._pending = (event, 0)

    def flush(self) -> None:
        """Fold the final pending decision (end of stream)."""
        self._fold_pending()

    def status(self) -> dict:
        """The current ``/statusz``-shaped dict for :func:`render_frame`."""
        import math as _math

        cached = sum(self._sizes.values())
        status: Dict[str, object] = {
            "alpha": self.alpha,
            "capacity_bytes": self.capacity,
            "cached_bytes": cached,
            "unique_bytes": None,
            "occupancy": (
                cached / self.capacity if self.capacity else None
            ),
            "cache_efficiency": None,
            "images": len(self._sizes),
            "lifetime": {
                "requests": self.stats.requests,
                "hits": self.stats.hits,
                "merges": self.stats.merges,
                "inserts": self.stats.inserts,
                "evictions": self.stats.deletes,
                "evictions_capacity": self.stats.evictions_capacity,
                "evictions_idle": self.stats.evictions_idle,
                "hit_rate": self.stats.hit_rate,
                "requested_bytes": self.stats.requested_bytes,
                "bytes_written": self.stats.bytes_written,
                "container_efficiency": self.stats.container_efficiency,
            },
            "window": {
                "size": self.slo.window,
                "series": {
                    name: value
                    for name, value in self.slo.values().items()
                    if not _math.isnan(value)
                },
            },
        }
        if self.alerts is not None:
            status["alerts"] = self.alerts.summary()
            status["alerts_firing"] = self.alerts.firing()
        return status


def frames_from_events(
    events: "Union[str, Iterable]",
    every: int = 100,
    window: int = DEFAULT_WINDOW,
    alerts=None,
    capacity: Optional[int] = None,
    alpha: Optional[float] = None,
    width: int = 76,
    history_series: Tuple[str, ...] = HISTORY_SERIES,
) -> Iterator[str]:
    """Yield rendered dashboard frames from an event stream.

    ``events`` is a JSONL path or an iterable of ``CacheEvent``; one
    frame is emitted per ``every`` requests plus a final frame at end
    of stream.  This is the engine behind
    ``repro-landlord top --from-events`` and its golden-frame test.
    """
    from ..core.events import EventKind
    from .stream import iter_event_stream

    if isinstance(events, str):
        events = iter_event_stream(events)
    if every < 1:
        raise ValueError("every must be >= 1")
    replay = EventReplay(
        window=window, alerts=alerts, capacity=capacity, alpha=alpha
    )
    history: Dict[str, List[float]] = {name: [] for name in history_series}

    def frame() -> str:
        status = replay.status()
        values = replay.slo.values()
        for name in history_series:
            if name == "occupancy":
                value = status.get("occupancy")
            else:
                value = values.get(name)
            history[name].append(
                float("nan") if value is None else float(value)
            )
        return render_frame(status, width=width, history=history)

    decisions = 0
    for event in events:
        replay.feed(event)
        if event.kind is not EventKind.DELETE:
            decisions += 1
            if decisions % every == 0:
                yield frame()
    replay.flush()
    yield frame()
