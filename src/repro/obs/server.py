"""Embedded observability HTTP server — zero-dependency, stdlib only.

Production cache fleets are watched by *scraping*: a Prometheus server
polls ``/metrics``, Kubernetes probes ``/healthz``, humans curl
``/statusz``.  This module gives a running LANDLORD the same surface
using only :mod:`http.server` (the container image bakes in no HTTP
framework), serving from a daemon thread so the request loop never
blocks on a scraper:

- ``GET /metrics`` — the live registry in Prometheus text exposition
  format (refreshed through an optional ``on_scrape`` hook, which the
  CLI uses to mirror the rolling SLO window into gauges);
  ``?format=openmetrics`` switches to the OpenMetrics exposition,
  which carries histogram exemplars and the ``# EOF`` terminator;
- ``GET /healthz`` — liveness JSON (``{"status": "ok", ...}``);
- ``GET /statusz`` — one JSON cache snapshot: occupancy, the
  hit/merge/insert/evict mix, α, windowed SLO series, alert states
  (built by :func:`build_status`);
- ``GET /traces/<n>`` — the last *n* decision narratives (the
  ``explain`` renderer) from a bounded ring buffer — a
  :class:`~repro.obs.trace.DecisionTracer` with a ``limit``;
  ``?format=json`` switches to the structured view: the decision
  records as JSON plus, when a :class:`~repro.obs.spans.SpanRecorder`
  is attached, the per-stage span waterfalls
  (``repro-landlord trace`` consumes exactly this).

The server only ever *reads* shared state.  Scrapes race the request
loop benignly under the GIL for scalar reads; an optional ``lock`` can
serialise scrape rendering against mutation for callers that want
strict consistency (the CLI's serve loop passes one and holds it while
applying requests).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs

from repro.obs.metrics import (
    OPENMETRICS_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
)

__all__ = ["ObsServer", "build_status"]


def build_status(cache, slo=None, alerts=None, extra: Optional[dict] = None) -> dict:
    """One JSON-safe status snapshot of a live cache (the ``/statusz``
    body).

    Always includes configuration (capacity, α), occupancy, and the
    lifetime hit/merge/insert/evict mix from
    :class:`~repro.core.cache.CacheStats`; adds the rolling-window SLO
    series when an :class:`~repro.obs.slo.SloTracker` is attached and
    the per-rule alert states when an
    :class:`~repro.obs.alerts.AlertEngine` is.  ``nan`` window values
    are dropped (JSON has no NaN).

    When the cache's decision engine exposes kernel telemetry
    (``prefilter_stats`` / ``compaction_stats`` / ``batch_stats``, as
    the vectorized engine does), an ``"engine"`` block carries it, plus
    the latest adaptive batching governor state when one has run.
    """
    import math

    stats = cache.stats
    status: Dict[str, object] = {
        "alpha": cache.alpha,
        "capacity_bytes": cache.capacity,
        "cached_bytes": cache.cached_bytes,
        "unique_bytes": cache.unique_bytes,
        "occupancy": (
            cache.cached_bytes / cache.capacity if cache.capacity else None
        ),
        "cache_efficiency": cache.cache_efficiency,
        "images": len(cache),
        "lifetime": {
            "requests": stats.requests,
            "hits": stats.hits,
            "merges": stats.merges,
            "inserts": stats.inserts,
            "evictions": stats.deletes,
            "evictions_capacity": stats.evictions_capacity,
            "evictions_idle": stats.evictions_idle,
            "hit_rate": stats.hit_rate,
            "requested_bytes": stats.requested_bytes,
            "bytes_written": stats.bytes_written,
            "container_efficiency": stats.container_efficiency,
        },
    }
    engine = getattr(cache, "_engine", None)
    if engine is not None:
        engine_status: Dict[str, object] = {}
        prefilter = getattr(engine, "prefilter_stats", None)
        if prefilter is not None:
            engine_status["prefilter"] = dict(prefilter)
        compaction = getattr(engine, "compaction_stats", None)
        if compaction is not None:
            engine_status["compaction"] = dict(compaction)
        batch = getattr(engine, "batch_stats", None)
        if batch is not None:
            engine_status["batch"] = dict(batch)
        governor = getattr(cache, "last_batch_governor", None)
        if governor is not None:
            engine_status["batch_governor"] = governor.status()
        if engine_status:
            engine_status["name"] = getattr(
                engine, "name", type(engine).__name__
            )
            status["engine"] = engine_status
    if slo is not None:
        status["window"] = {
            "size": slo.window,
            "series": {
                name: value
                for name, value in slo.values().items()
                if not math.isnan(value)
            },
        }
    if alerts is not None:
        status["alerts"] = alerts.summary()
        status["alerts_firing"] = alerts.firing()
    if extra:
        status.update(extra)
    return status


class ObsServer:
    """Threaded HTTP endpoint over a registry, status source, and traces.

    Args:
        registry: :class:`~repro.obs.metrics.MetricsRegistry` rendered
            by ``/metrics`` (``None`` serves an empty exposition).
        status_fn: zero-argument callable returning the ``/statusz``
            dict (typically ``lambda: build_status(cache, slo, alerts)``).
        tracer: bounded :class:`~repro.obs.trace.DecisionTracer` backing
            ``/traces/<n>`` (``None`` → 404 unless ``spans`` is given).
        spans: optional :class:`~repro.obs.spans.SpanRecorder`; its
            per-trace waterfalls join the ``/traces/<n>?format=json``
            body under the ``"traces"`` key.
        host / port: bind address; port 0 binds an ephemeral port —
            read the outcome from :attr:`port` / :attr:`url`.
        on_scrape: called (under ``lock`` if given) before rendering
            ``/metrics`` — the freshness hook for windowed gauges.
        lock: optional :class:`threading.Lock` serialising scrape
            rendering against cache mutation.
    """

    def __init__(
        self,
        registry=None,
        status_fn: Optional[Callable[[], dict]] = None,
        tracer=None,
        host: str = "127.0.0.1",
        port: int = 0,
        on_scrape: Optional[Callable[[], None]] = None,
        lock: Optional[threading.Lock] = None,
        spans=None,
    ) -> None:
        self.registry = registry
        self.status_fn = status_fn
        self.tracer = tracer
        self.spans = spans
        self.on_scrape = on_scrape
        self.lock = lock
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self.scrapes = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the server thread is live."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def port(self) -> Optional[int]:
        """The bound port once started (resolves ephemeral port 0)."""
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> Optional[str]:
        """Base URL once started, e.g. ``http://127.0.0.1:43210``."""
        if self._httpd is None:
            return None
        return f"http://{self._host}:{self.port}"

    def start(self) -> int:
        """Bind and serve from a daemon thread; returns the bound port."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._started_at = monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut down cleanly; idempotent."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        """Context-manager start (``with ObsServer(...) as srv:``)."""
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager clean stop."""
        self.stop()

    # -- endpoint bodies ---------------------------------------------------

    def render_get(self, path: str, query: str = "") -> "tuple[int, str, str]":
        """Resolve one GET path to ``(status, content_type, body)``.

        The complete routing behind the HTTP handler, exposed so a host
        embedding this server inside another endpoint (the service
        daemon serves ``/metrics``/``/healthz``/``/statusz``/``/traces``
        from its own submission socket) reuses it verbatim.  Rendering
        happens under :attr:`lock` when one is attached, exactly as a
        scrape through :meth:`start`'s own socket would.  ``path`` must
        already be query-stripped and ``/``-normalised, with the raw
        query string (no ``?``) passed separately — ``/metrics``
        honours ``format=openmetrics``.  An embedded, never-started
        server begins its uptime clock at the first render.
        """
        if self._started_at is None:
            self._started_at = monotonic()
        lock = self.lock
        if lock is not None:
            lock.acquire()
        try:
            return self._route(path, query)
        finally:
            if lock is not None:
                lock.release()

    def _route(self, path: str, query: str = "") -> "tuple[int, str, str]":
        if path == "/metrics":
            params = parse_qs(query) if query else {}
            fmt = params.get("format", ["prometheus"])[-1]
            if fmt not in ("prometheus", "openmetrics"):
                return (
                    400,
                    "text/plain",
                    f"unknown format {fmt!r}; "
                    "use prometheus or openmetrics\n",
                )
            openmetrics = fmt == "openmetrics"
            return (
                200,
                (
                    OPENMETRICS_CONTENT_TYPE if openmetrics
                    else PROMETHEUS_CONTENT_TYPE
                ),
                self._render_metrics(openmetrics),
            )
        if path == "/healthz":
            return 200, "application/json", self._render_health()
        if path == "/statusz":
            return 200, "application/json", self._render_status()
        if path.startswith("/traces"):
            tail = path[len("/traces"):].lstrip("/")
            try:
                n = int(tail) if tail else 10
            except ValueError:
                return 400, "text/plain", f"bad trace count {tail!r}\n"
            if n < 1:
                return 400, "text/plain", "trace count must be >= 1\n"
            params = parse_qs(query) if query else {}
            fmt = params.get("format", ["text"])[-1]
            if fmt == "json":
                body = self._render_traces_json(n)
                if body is None:
                    return 404, "text/plain", "tracing not enabled\n"
                return 200, "application/json", body
            if fmt != "text":
                return (
                    400,
                    "text/plain",
                    f"unknown format {fmt!r}; use text or json\n",
                )
            body = self._render_traces(n)
            if body is None:
                return 404, "text/plain", "tracing not enabled\n"
            return 200, "text/plain; charset=utf-8", body
        return (
            404,
            "text/plain",
            "endpoints: /metrics /healthz /statusz /traces/<n>\n",
        )

    def _uptime(self) -> float:
        return monotonic() - self._started_at if self._started_at else 0.0

    def _render_metrics(self, openmetrics: bool = False) -> str:
        if self.on_scrape is not None:
            self.on_scrape()
        self.scrapes += 1
        if self.registry is None:
            return "# EOF\n" if openmetrics else ""
        if openmetrics:
            return self.registry.to_openmetrics()
        return self.registry.to_prometheus()

    def _render_health(self) -> str:
        return json.dumps(
            {
                "status": "ok",
                "uptime_seconds": round(self._uptime(), 3),
                "scrapes": self.scrapes,
            }
        )

    def _render_status(self) -> str:
        status = self.status_fn() if self.status_fn else {}
        return json.dumps(status, sort_keys=True, default=str)

    def _render_traces(self, n: int) -> Optional[str]:
        if self.tracer is None:
            return None
        traces = self.tracer.traces()[-n:]
        if not traces:
            return "no traces recorded\n"
        return "\n\n".join(t.explain() for t in traces) + "\n"

    def _render_traces_json(self, n: int) -> Optional[str]:
        """The structured ``/traces?format=json`` body: the last *n*
        decision records (``"decisions"``) and span waterfalls
        (``"traces"``); ``None`` when neither source is attached."""
        if self.tracer is None and self.spans is None:
            return None
        payload = {
            "decisions": (
                [t.to_jsonable() for t in self.tracer.traces()[-n:]]
                if self.tracer is not None
                else []
            ),
            "traces": (
                self.spans.traces(last=n) if self.spans is not None else []
            ),
        }
        return json.dumps(payload, sort_keys=True) + "\n"


def _make_handler(server: "ObsServer"):
    """Build the request-handler class closed over one ObsServer."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # scrapers are chatty; stay silent

        def _reply(self, code: int, body: str, content_type: str) -> None:
            data = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):  # noqa: N802 - stdlib casing
            path, _, query = self.path.partition("?")
            path = path.rstrip("/") or "/"
            try:
                status, content_type, body = server.render_get(path, query)
                self._reply(status, body, content_type)
            except BrokenPipeError:  # scraper went away mid-reply
                pass

    return Handler
