"""Nestable ``perf_counter`` timing spans backed by histograms.

:class:`SpanClock` wraps a :class:`~repro.obs.metrics.MetricsRegistry`
with a context-manager interface for coarse instrumentation sites
(journal compaction, whole simulations).  Spans nest: entering
``span("compact")`` inside ``span("flush")`` records into
``<prefix>_flush_compact_seconds``, so the hierarchy is readable in the
metric names themselves without a tracing backend.

The cache's per-request hot paths deliberately do *not* use this class —
a context manager costs two method calls plus a ``try/finally`` per
request, which matters at millions of requests per sweep.  Those sites
pre-bind histogram children (see ``_CacheInstruments`` in
``repro.core.cache``) and call ``perf_counter`` directly behind a single
``is not None`` guard.  :class:`SpanClock` is the convenience layer for
everything that is not request-rate-critical.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, Optional, Sequence

from .metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry, _BoundHistogram

__all__ = ["SpanClock"]


class SpanClock:
    """Records named, nestable wall-clock spans into histograms.

    Every distinct span path becomes one histogram named
    ``<prefix>_<joined_path>_seconds`` in the underlying registry; the
    ``_seconds`` suffix marks it as wall-clock (excluded from
    deterministic snapshots — see DESIGN.md).  Constructing with
    ``registry=None`` yields a no-op clock, so call sites can hold a
    :class:`SpanClock` unconditionally.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry],
        prefix: str = "span",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self._registry = registry
        self._prefix = prefix
        self._buckets = tuple(buckets)
        self._stack: list = []
        self._bound: Dict[str, _BoundHistogram] = {}

    @property
    def enabled(self) -> bool:
        """Whether spans record anywhere (``False`` for the no-op clock)."""
        return self._registry is not None

    def _histogram_for(self, path: str) -> _BoundHistogram:
        child = self._bound.get(path)
        if child is None:
            name = f"{self._prefix}_{path}_seconds"
            family = self._registry.histogram(  # type: ignore[union-attr]
                name,
                f"Wall-clock seconds spent in the {path} span.",
                buckets=self._buckets,
            )
            child = family.labels()
            self._bound[path] = child
        return child

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block; nested spans join their names with ``_``."""
        if self._registry is None:
            yield
            return
        self._stack.append(name)
        path = "_".join(self._stack)
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self._stack.pop()
            self._histogram_for(path).observe(elapsed)

    def observe(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        if self._registry is None:
            return
        self._histogram_for(name).observe(seconds)
