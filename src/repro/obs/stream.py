"""JSONL event streams compatible with the in-memory ``CacheEvent`` log.

The simulator's ``record_events`` timeline and the journal both live in
memory or in bespoke formats; operators (and ``analysis/report.py``)
want a flat, greppable stream.  This module serialises
:class:`~repro.core.events.CacheEvent` records to JSON-lines and back,
and derives :class:`~repro.core.cache.CacheStats` from a stream so the
parity invariant *counters never drift from events* is checkable (and
checked, in ``tests/obs/test_stream.py``).

Only :mod:`repro.core.events` is imported at module scope; the
``CacheStats`` import in :func:`stats_from_events` is deferred so that
``repro.core.cache`` can import ``repro.obs`` without a cycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..core.events import CacheEvent, EventKind

__all__ = [
    "event_to_jsonable",
    "event_from_jsonable",
    "write_event_stream",
    "read_event_stream",
    "iter_event_stream",
    "stats_from_events",
]

PathLike = Union[str, Path]

_DECISION_KINDS = (EventKind.HIT, EventKind.MERGE, EventKind.INSERT)


def event_to_jsonable(event: CacheEvent) -> dict:
    """JSON-safe dict form of one event (kind as its string value)."""
    out = {
        "kind": event.kind.value,
        "request_index": event.request_index,
        "image_id": event.image_id,
        "image_bytes": event.image_bytes,
        "bytes_written": event.bytes_written,
        "requested_bytes": event.requested_bytes,
        "candidates_examined": event.candidates_examined,
        "conflicts_skipped": event.conflicts_skipped,
    }
    if event.reason is not None:
        out["reason"] = event.reason
    if event.distance is not None:
        out["distance"] = event.distance
    return out


def event_from_jsonable(data: dict) -> CacheEvent:
    """Inverse of :func:`event_to_jsonable` (tolerates old streams
    written before the reason/distance/delta fields existed)."""
    return CacheEvent(
        kind=EventKind(data["kind"]),
        request_index=data["request_index"],
        image_id=data["image_id"],
        image_bytes=data["image_bytes"],
        bytes_written=data.get("bytes_written", 0),
        requested_bytes=data.get("requested_bytes"),
        reason=data.get("reason"),
        distance=data.get("distance"),
        candidates_examined=data.get("candidates_examined", 0),
        conflicts_skipped=data.get("conflicts_skipped", 0),
    )


def write_event_stream(events: Iterable[CacheEvent], path: PathLike) -> Path:
    """Write events as JSON-lines, one event per line, in order."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_jsonable(event), sort_keys=True))
            fh.write("\n")
    return path


def iter_event_stream(
    path: PathLike, heal_torn_tail: bool = True
) -> Iterator[CacheEvent]:
    """Lazily yield events from a JSONL stream file.

    A *torn final line* — a truncated JSON fragment left by a writer
    that crashed mid-write — is silently dropped, the same healing
    contract the write-ahead journal honours: the stream replays to
    the last complete event instead of raising.  A malformed line that
    is *not* last is real corruption and raises :class:`ValueError`
    (pass ``heal_torn_tail=False`` to make even a torn tail raise).
    """
    pending_error: "tuple[str, Exception] | None" = None
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if pending_error is not None:
                bad, exc = pending_error
                raise ValueError(
                    f"corrupt event stream {path}: unparseable non-final "
                    f"line {bad!r}: {exc}"
                )
            try:
                event = event_from_jsonable(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if not heal_torn_tail:
                    raise ValueError(
                        f"corrupt event stream {path}: {line!r}: {exc}"
                    ) from exc
                # Maybe a torn tail: defer the verdict until we know
                # whether any later line exists.
                pending_error = (line, exc)
                continue
            yield event


def read_event_stream(
    path: PathLike, heal_torn_tail: bool = True
) -> List[CacheEvent]:
    """Read a whole JSONL stream file into a list (healing a torn
    final line unless ``heal_torn_tail=False``)."""
    return list(iter_event_stream(path, heal_torn_tail=heal_torn_tail))


def stats_from_events(events: Iterable[CacheEvent]):
    """Reconstruct a ``CacheStats`` from an event log.

    Valid for request/evict-driven histories (``request`` +
    ``evict_idle`` — everything the simulator and CLI produce): the
    ``splits``/``adoptions`` counters only move under the tenancy
    split/adopt operations, which do not emit events, and stay zero
    here.  Used by the parity test asserting that replaying the event
    log reproduces the live cache's counters exactly.
    """
    from ..core.cache import CacheStats

    stats = CacheStats()
    for event in events:
        if event.kind in _DECISION_KINDS:
            stats.requests += 1
            stats.requested_bytes += event.requested_bytes or 0
            stats.candidates_examined += event.candidates_examined
            stats.conflicts_skipped += event.conflicts_skipped
            # used_bytes accumulates the size of the image each request
            # actually ran with — exactly the event's image_bytes.
            stats.used_bytes += event.image_bytes
            if event.kind is EventKind.HIT:
                stats.hits += 1
            elif event.kind is EventKind.MERGE:
                stats.merges += 1
                stats.bytes_written += event.bytes_written
            else:
                stats.inserts += 1
                stats.bytes_written += event.bytes_written
        elif event.kind is EventKind.DELETE:
            stats.deletes += 1
            if event.reason == "idle":
                stats.evictions_idle += 1
            else:
                stats.evictions_capacity += 1
    return stats
