"""Cluster-wide telemetry plane: worker push, parent aggregation.

The embedded ``/metrics`` server (``repro.obs.server``) exposes *one*
process's registry, but a sweep fans out over worker processes and a
daemon serves many clients — the fleet problem the CMS XCache migration
solved with per-instance labels on a shared scrape endpoint.  This
module closes that gap with three pieces, all stdlib-only:

- :class:`TelemetryPusher` — worker side.  POSTs JSON registry
  snapshots to the parent's ``/telemetry`` endpoint over loopback HTTP.
  Two payload shapes: *cells* (per-task snapshots tagged with the
  task's submission index — how sweep workers stream) and *cumulative*
  (replace-this-worker's-registry — how long-lived daemon clients
  report).  Best-effort: pushes never raise into the caller, and the
  pusher disables itself after a run of consecutive failures so a dead
  parent cannot slow a sweep down.
- :class:`TelemetryAggregator` — parent side bookkeeping.  Keeps one
  registry per worker (for ``worker="..."``-labelled series) plus an
  *aggregated* view.  Cell payloads are folded strictly in submission
  index order (contiguous-prefix folding), which makes the aggregate
  bit-identical to a serial run of the same work: IEEE float sums (for
  example ``landlord_merge_distance_sum``) depend on fold order, so
  "merge whenever a worker reports" would drift while "fold cell *k*
  only after cells *0..k-1*" replays exactly the serial merge order.
- :class:`TelemetryCollector` — the parent's HTTP endpoint.  Accepts
  ``POST /telemetry`` and serves ``GET /metrics`` / ``/healthz`` /
  ``/statusz`` through an embedded :class:`~repro.obs.server.ObsServer`
  so one scrape answers for the whole run.

The fleet exposition interleaves, under each family's single ``# TYPE``
block, the aggregated series (no ``worker`` label) followed by every
worker's series with a ``worker`` label prepended — legal in both the
classic Prometheus text format and OpenMetrics, and validated by
:mod:`repro.obs.promcheck` in both.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import (
    MetricsRegistry,
    family_header_lines,
    render_family_lines,
)
from repro.obs.server import ObsServer

__all__ = [
    "TelemetryAggregator",
    "TelemetryCollector",
    "TelemetryPusher",
    "label_snapshot",
]

#: A pusher disables itself after this many consecutive failed POSTs.
MAX_PUSH_FAILURES = 5

#: Counter families surfaced per worker in ``/statusz`` (and from there
#: in the ``top`` dashboard's per-worker rows).
_STATUS_COUNTERS = (
    ("requests", "landlord_requests_total"),
    ("hits", "landlord_hits_total"),
    ("merges", "landlord_merges_total"),
    ("inserts", "landlord_inserts_total"),
    ("evictions", "landlord_evictions_total"),
)


def label_snapshot(snap: dict, worker: str) -> dict:
    """A copy of a registry snapshot with a ``worker`` label prepended.

    Every family gains ``worker`` as its first label name and every
    series gains ``worker``'s value first — the transform that turns a
    worker's private registry into fleet-addressable series.  The input
    is not modified.
    """
    families = {}
    for name, entry in snap.get("families", {}).items():
        out = dict(entry)
        out["labelnames"] = ["worker"] + list(entry.get("labelnames", ()))
        out["series"] = [
            {**series, "labels": [worker] + list(series["labels"])}
            for series in entry["series"]
        ]
        families[name] = out
    return {"v": snap.get("v", 1), "families": families}


class _WorkerState:
    """Aggregator-side record of one reporting worker."""

    __slots__ = ("registry", "mode", "pushes", "cells", "final")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.mode: Optional[str] = None
        self.pushes = 0
        self.cells = 0
        self.final = False


class TelemetryAggregator:
    """Fold worker telemetry into per-worker views plus one aggregate.

    Args:
        base: optional local :class:`MetricsRegistry` (the parent's own
            instruments, e.g. a daemon's ``service_*`` families) whose
            live contents are included in the aggregate at render time.
        expected_cells: for sweep runs, the total cell count — lets
            ``/statusz`` report fold progress.

    Thread-safe: ingest (HTTP handler threads) and rendering (scrape
    threads) serialise on one internal re-entrant lock, exposed as
    :attr:`lock` so an embedding server can share it.
    """

    def __init__(
        self,
        base: Optional[MetricsRegistry] = None,
        expected_cells: Optional[int] = None,
    ) -> None:
        self.base = base
        self.expected_cells = expected_cells
        self.lock = threading.RLock()
        self._workers: Dict[str, _WorkerState] = {}
        self._folded = MetricsRegistry()
        self._pending: Dict[int, dict] = {}
        self._next_index = 0
        self._duplicates = 0
        self._complete = False

    # -- ingest ------------------------------------------------------------

    def _worker(self, worker: str) -> _WorkerState:
        state = self._workers.get(worker)
        if state is None:
            state = self._workers[worker] = _WorkerState()
        return state

    def register_worker(self, worker: str) -> None:
        """Announce a live worker before it has anything to report."""
        with self.lock:
            self._worker(worker)

    def ingest(self, worker: str, snapshot: dict, final: bool = False) -> None:
        """Replace ``worker``'s cumulative registry with ``snapshot``.

        The long-lived-client mode: each push is the worker's *complete*
        registry, so newer replaces older rather than summing.
        """
        with self.lock:
            state = self._worker(worker)
            state.mode = "cumulative"
            state.pushes += 1
            state.final = state.final or final
            state.registry = MetricsRegistry.from_snapshot(snapshot)

    def ingest_cells(
        self,
        worker: str,
        cells: Sequence[Tuple[int, dict]],
        final: bool = False,
    ) -> None:
        """Ingest per-task snapshots tagged with submission indices.

        Each cell lands in ``worker``'s view immediately and queues for
        the aggregate, which only ever folds the contiguous index prefix
        — the determinism contract described in the module docstring.
        Duplicate indices (a retried push) are dropped.
        """
        with self.lock:
            state = self._worker(worker)
            state.mode = "cells"
            state.pushes += 1
            state.final = state.final or final
            for index, snap in cells:
                index = int(index)
                if index < self._next_index or index in self._pending:
                    self._duplicates += 1
                    continue
                state.registry.merge_snapshot(snap)
                state.cells += 1
                self._pending[index] = snap
            while self._next_index in self._pending:
                self._folded.merge_snapshot(
                    self._pending.pop(self._next_index)
                )
                self._next_index += 1

    def mark_final(self, worker: str) -> None:
        """Record that a worker finished (its last push is final)."""
        with self.lock:
            self._worker(worker).final = True

    def mark_complete(self) -> None:
        """Record that the run driving this aggregator has finished."""
        with self.lock:
            self._complete = True

    def ingest_payload(self, payload: dict) -> dict:
        """Dispatch one ``POST /telemetry`` JSON body.

        Accepted shapes (all carry ``"worker"``)::

            {"worker": w, "register": true}
            {"worker": w, "mode": "cells", "cells": [[idx, snap], ...]}
            {"worker": w, "mode": "cumulative", "snapshot": snap}
            {"worker": w, "final": true}

        Returns a small ack dict; raises :class:`ValueError` on a
        malformed body (the HTTP layer turns that into a 400).
        """
        if not isinstance(payload, dict):
            raise ValueError("telemetry body must be a JSON object")
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ValueError('telemetry body needs a "worker" string')
        final = bool(payload.get("final", False))
        mode = payload.get("mode")
        if payload.get("register"):
            self.register_worker(worker)
        elif mode == "cells":
            cells = payload.get("cells")
            if not isinstance(cells, list):
                raise ValueError('"cells" must be a list of [index, snap]')
            self.ingest_cells(
                worker, [(cell[0], cell[1]) for cell in cells], final=final
            )
        elif mode == "cumulative":
            snapshot = payload.get("snapshot")
            if not isinstance(snapshot, dict):
                raise ValueError('"snapshot" must be a registry snapshot')
            self.ingest(worker, snapshot, final=final)
        elif final:
            self.mark_final(worker)
        else:
            raise ValueError(
                'telemetry body needs "register", "mode", or "final"'
            )
        with self.lock:
            return {
                "ok": True,
                "workers": len(self._workers),
                "cells_folded": self._next_index,
            }

    # -- views -------------------------------------------------------------

    def aggregate(self) -> MetricsRegistry:
        """One registry holding the whole fleet's totals.

        Base (live parent) + index-folded cells + cumulative worker
        registries merged in sorted worker order.  For a pure cell run
        this is bit-identical to the serial registry once every cell has
        been folded.
        """
        with self.lock:
            out = MetricsRegistry()
            if self.base is not None:
                out.merge_snapshot(self.base.snapshot())
            out.merge_snapshot(self._folded.snapshot())
            for worker in sorted(self._workers):
                state = self._workers[worker]
                if state.mode == "cumulative":
                    out.merge_snapshot(state.registry.snapshot())
            return out

    def worker_registries(self) -> List[Tuple[str, MetricsRegistry]]:
        """``(worker, registry)`` pairs in sorted worker order."""
        with self.lock:
            return [
                (worker, self._workers[worker].registry)
                for worker in sorted(self._workers)
            ]

    def status(self) -> dict:
        """The ``/statusz`` ``telemetry`` block (drives ``top`` rows)."""
        with self.lock:
            workers = {}
            for worker in sorted(self._workers):
                state = self._workers[worker]
                entry: dict = {
                    "mode": state.mode,
                    "pushes": state.pushes,
                    "cells": state.cells,
                    "final": state.final,
                }
                for short, family_name in _STATUS_COUNTERS:
                    family = state.registry.get(family_name)
                    if family is not None:
                        entry[short] = sum(
                            child.value for _, child in family.series()
                        )
                workers[worker] = entry
            status: dict = {"workers": workers, "complete": self._complete}
            if (
                self.expected_cells is not None
                or self._next_index
                or self._pending
                or self._duplicates
            ):
                status["cells"] = {
                    "folded": self._next_index,
                    "pending": len(self._pending),
                    "duplicates": self._duplicates,
                    "expected": self.expected_cells,
                }
            return status

    # -- rendering ---------------------------------------------------------

    def _render(self, openmetrics: bool) -> str:
        with self.lock:
            agg = self.aggregate()
            workers = [
                (worker, registry)
                for worker, registry in self.worker_registries()
                if len(registry)
            ]
            if not workers:
                # No fleet yet: render exactly what a bare registry
                # would, so embedding the aggregator is invisible to
                # existing scrapers until the first worker reports.
                return (
                    agg.to_openmetrics() if openmetrics
                    else agg.to_prometheus()
                )
            lines: List[str] = []
            for family in agg.families():
                lines.extend(family_header_lines(family, openmetrics))
                lines.extend(render_family_lines(family, openmetrics))
                for worker, registry in workers:
                    child = registry.get(family.name)
                    if child is not None:
                        lines.extend(
                            render_family_lines(
                                child, openmetrics,
                                extra_labels=(("worker", worker),),
                            )
                        )
            if openmetrics:
                lines.append("# EOF")
            return "\n".join(lines) + "\n" if lines else ""

    def to_prometheus(self) -> str:
        """Fleet exposition: aggregate + ``worker``-labelled series."""
        return self._render(openmetrics=False)

    def to_openmetrics(self) -> str:
        """Fleet exposition in OpenMetrics (exemplars + ``# EOF``)."""
        return self._render(openmetrics=True)


class TelemetryCollector:
    """The parent's loopback telemetry endpoint.

    ``POST /telemetry`` feeds an :class:`TelemetryAggregator`;
    ``GET /metrics`` (both formats), ``/healthz``, and ``/statusz`` are
    served by an embedded :class:`~repro.obs.server.ObsServer` whose
    registry *is* the aggregator — one scrape answers for the fleet.

    Args:
        aggregator: the aggregator to feed (one is created if omitted).
        host / port: bind address (port 0 = ephemeral).
        status_extra: optional callable returning extra ``/statusz``
            keys (the sweep CLI injects sweep progress).
    """

    def __init__(
        self,
        aggregator: Optional[TelemetryAggregator] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        status_extra=None,
    ) -> None:
        self.aggregator = aggregator or TelemetryAggregator()
        self._status_extra = status_extra
        self.obs = ObsServer(
            registry=self.aggregator,
            status_fn=self._status,
            host=host,
            port=port,
            lock=self.aggregator.lock,
        )
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def _status(self) -> dict:
        status = {"telemetry": self.aggregator.status()}
        if self._status_extra is not None:
            status.update(self._status_extra())
        return status

    @property
    def port(self) -> Optional[int]:
        """The bound port once started."""
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> Optional[str]:
        """Base URL once started, e.g. ``http://127.0.0.1:43210``."""
        if self._httpd is None:
            return None
        return f"http://{self._host}:{self.port}"

    def start(self) -> int:
        """Bind and serve from a daemon thread; returns the bound port."""
        if self._httpd is not None:
            raise RuntimeError("collector already started")
        handler = _make_collector_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-collector",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut down cleanly; idempotent."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryCollector":
        """Context-manager start."""
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager clean stop."""
        self.stop()


def _make_collector_handler(collector: "TelemetryCollector"):
    """Build the request-handler class closed over one collector."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # workers push often; stay silent

        def _reply(self, code: int, body: str, content_type: str) -> None:
            data = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):  # noqa: N802 - stdlib casing
            path, _, query = self.path.partition("?")
            path = path.rstrip("/") or "/"
            try:
                status, content_type, body = collector.obs.render_get(
                    path, query
                )
                self._reply(status, body, content_type)
            except BrokenPipeError:  # scraper went away mid-reply
                pass

        def do_POST(self):  # noqa: N802 - stdlib casing
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path != "/telemetry":
                    self._reply(
                        404, '{"error": "POST /telemetry only"}',
                        "application/json",
                    )
                    return
                try:
                    length = int(self.headers.get("Content-Length", ""))
                    payload = json.loads(self.rfile.read(length))
                    ack = collector.aggregator.ingest_payload(payload)
                except (ValueError, KeyError, IndexError, TypeError) as exc:
                    self._reply(
                        400, json.dumps({"error": str(exc)}),
                        "application/json",
                    )
                    return
                self._reply(200, json.dumps(ack), "application/json")
            except BrokenPipeError:  # pusher went away mid-reply
                pass

    return Handler


class TelemetryPusher:
    """Worker-side best-effort snapshot pusher.

    Args:
        url: the collector (or daemon) base URL — ``/telemetry`` is
            appended unless already present.
        worker: fleet label value; defaults to ``pid-<os.getpid()>``
            (stable per worker process, unique within a host).
        timeout: per-POST socket timeout in seconds.

    A push failure never raises: after :data:`MAX_PUSH_FAILURES`
    consecutive failures the pusher disables itself with one warning,
    so telemetry can never turn a healthy sweep into a hung one.
    """

    def __init__(
        self, url: str, worker: Optional[str] = None, timeout: float = 5.0
    ) -> None:
        base = url.rstrip("/")
        self.url = base if base.endswith("/telemetry") else base + "/telemetry"
        self.worker = worker or f"pid-{os.getpid()}"
        self.timeout = timeout
        self.enabled = True
        self.pushed = 0
        self._failures = 0

    def register(self) -> bool:
        """Announce this worker to the collector (live-worker row)."""
        return self._post({"register": True})

    def push_cells(
        self, cells: Sequence[Tuple[int, dict]], final: bool = False
    ) -> bool:
        """Push per-task snapshots tagged with submission indices."""
        return self._post({
            "mode": "cells",
            "cells": [[int(index), snap] for index, snap in cells],
            "final": final,
        })

    def push(self, snapshot: dict, final: bool = False) -> bool:
        """Push this worker's complete registry (replaces the last)."""
        return self._post({
            "mode": "cumulative", "snapshot": snapshot, "final": final,
        })

    def finalize(self) -> bool:
        """Mark this worker finished (no more pushes will follow)."""
        return self._post({"final": True})

    def _post(self, payload: dict) -> bool:
        if not self.enabled:
            return False
        body = dict(payload)
        body["v"] = 1
        body["worker"] = self.worker
        data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.url,
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                response.read()
        except (urllib.error.URLError, OSError, ValueError):
            self._failures += 1
            if self._failures >= MAX_PUSH_FAILURES:
                self.enabled = False
                warnings.warn(
                    f"telemetry pusher for {self.worker!r} disabled after "
                    f"{self._failures} consecutive failed pushes to "
                    f"{self.url}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return False
        self._failures = 0
        self.pushed += 1
        return True
