"""Rolling-window derived telemetry (SLO series) over the landlord loop.

PR 3's :class:`~repro.obs.metrics.MetricsRegistry` records *lifetime*
counters; operators watch *windows* — "what is the hit rate over the
last 500 requests", "are evictions storming right now".  This module
derives exactly those series, updated on the cache's hot path behind
the same ``is not None`` guard discipline the instruments use (see
``benchmarks/test_obs_overhead.py`` for the disabled-path bound and the
enabled-path bound this module must fit inside).

A :class:`SloTracker` is attached with
:meth:`~repro.core.cache.LandlordCache.enable_slo` and receives one
:meth:`SloTracker.on_request` call per request.  It maintains, over a
request-count window (a ring buffer with O(1) rolling sums):

- the windowed **hit/merge/insert mix** and hit rate;
- the windowed **merge-rewrite byte-rate** (bytes written per request —
  the paper's Actual Writes, localised in time);
- windowed **container efficiency** (requested/used bytes) and the
  instantaneous **cache efficiency** and **occupancy** gauges;
- the windowed **eviction rate** (evictions per request — the
  "eviction storm" signal);
- **p50/p95/p99 request latency** by streaming the same fixed bucket
  scheme the latency histograms use: each request pushes one bucket
  index and pops the expired one, so a window quantile is a single
  pass over ~20 bucket counts, never a sort over raw samples.

Every series is a plain float readable via :meth:`SloTracker.values`,
which is what the alert engine (:mod:`repro.obs.alerts`), the
``/statusz`` endpoint (:mod:`repro.obs.server`), and the ``top``
dashboard (:mod:`repro.obs.dashboard`) all consume.  Latency series are
wall-clock and therefore non-deterministic; every other series is a
pure function of the decision sequence, so alert rules over them
evaluate bit-identically across runs (property-tested).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple

from .metrics import DEFAULT_TIME_BUCKETS

__all__ = [
    "RollingWindow",
    "SloTracker",
    "quantile_from_buckets",
    "DEFAULT_WINDOW",
    "SLO_SERIES",
]

DEFAULT_WINDOW = 500

#: Every series name a tracker exposes, in display order.  Alert rules
#: may reference any of these; ``latency_*`` are wall-clock (present
#: only when the cache measured latencies) and everything else is a
#: deterministic function of the decision sequence.
SLO_SERIES: Tuple[str, ...] = (
    "window_requests",
    "hit_rate",
    "merge_rate",
    "insert_rate",
    "eviction_rate",
    "write_bytes_per_request",
    "requested_bytes_per_request",
    "container_efficiency",
    "cache_efficiency",
    "occupancy",
    "images",
    "latency_p50",
    "latency_p95",
    "latency_p99",
)

_ACTIONS = ("hit", "merge", "insert")


def quantile_from_buckets(
    uppers: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile from cumulative-free bucket counts.

    ``counts`` has one slot per upper bound plus a final ``+Inf`` slot
    (the layout of :class:`~repro.obs.metrics.Histogram` children and of
    the tracker's rolling latency buckets).  Linear interpolation within
    the containing bucket, matching PromQL's ``histogram_quantile``;
    ``nan`` when the window is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return float("nan")
    rank = q * total
    seen = 0
    for i, bucket_count in enumerate(counts):
        if seen + bucket_count >= rank and bucket_count:
            lower = 0.0 if i == 0 else uppers[i - 1]
            upper = uppers[i] if i < len(uppers) else uppers[-1]
            fraction = (rank - seen) / bucket_count
            return lower + (upper - lower) * min(1.0, fraction)
        seen += bucket_count
    return uppers[-1]  # pragma: no cover - defensive


class RollingWindow:
    """A fixed-size ring buffer of floats with an O(1) rolling sum."""

    __slots__ = ("size", "_values", "_sum")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self._values: Deque[float] = deque()
        self._sum = 0.0

    def __len__(self) -> int:
        return len(self._values)

    def push(self, value: float) -> None:
        """Append one sample, expiring the oldest when full."""
        self._values.append(value)
        self._sum += value
        if len(self._values) > self.size:
            self._sum -= self._values.popleft()

    @property
    def sum(self) -> float:
        """Sum of the samples currently in the window."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of the samples in the window (``nan`` when empty)."""
        return self._sum / len(self._values) if self._values else float("nan")


class SloTracker:
    """Derives rolling-window series from per-request observations.

    One :meth:`on_request` call per served request keeps every series
    current in O(1); :meth:`values` exposes them as a flat name→float
    mapping (see :data:`SLO_SERIES`).  Wall-clock latency is optional —
    pass ``latency_s=None`` (event replays, deterministic tests) and the
    ``latency_*`` series stay ``nan`` without perturbing anything else.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.capacity: Optional[int] = None
        self.alpha: Optional[float] = None
        self._uppers = tuple(float(b) for b in buckets)
        # Per-request parallel windows (all trimmed together).
        self._actions: Deque[int] = deque()  # index into _ACTIONS
        self._action_counts = [0, 0, 0]
        self._evictions = RollingWindow(window)
        self._written = RollingWindow(window)
        self._requested = RollingWindow(window)
        self._used = RollingWindow(window)
        # Rolling latency bucket counts; -1 marks "no latency sample".
        self._lat_buckets: Deque[int] = deque()
        self._lat_counts = [0] * (len(self._uppers) + 1)
        # Instantaneous gauges (set from the cache on every request).
        self._cached_bytes = 0
        self._unique_bytes: Optional[int] = 0
        self._images = 0
        self._extras: Dict[str, float] = {}
        self.requests = 0

    def configure(self, capacity: int, alpha: float) -> None:
        """Record static cache configuration (shown on dashboards)."""
        self.capacity = capacity
        self.alpha = alpha

    def set_extra(self, name: str, value: Optional[float]) -> None:
        """Publish a host gauge as an additional series in :meth:`values`.

        The service daemon uses this to ride its queue depth and
        rejection counters on the same machinery as the built-in series:
        extras appear in :meth:`values` (so alert rules can reference
        them), in :meth:`export_to`'s ``slo_window`` gauges, and on
        ``/statusz``.  Names must not shadow a built-in
        :data:`SLO_SERIES` entry; pass ``None`` to retract a series.
        """
        if name in SLO_SERIES:
            raise ValueError(
                f"{name!r} is a built-in SLO series and cannot be overridden"
            )
        if value is None:
            self._extras.pop(name, None)
        else:
            self._extras[name] = float(value)

    def _bucket_of(self, latency_s: float) -> int:
        lo, hi = 0, len(self._uppers)
        while lo < hi:
            mid = (lo + hi) // 2
            if latency_s <= self._uppers[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def on_request(
        self,
        action: str,
        requested_bytes: int,
        bytes_written: int,
        used_bytes: int,
        evictions: int,
        latency_s: Optional[float],
        cached_bytes: int,
        unique_bytes: Optional[int],
        images: int,
    ) -> None:
        """Fold one served request into the window (cache hook).

        ``action`` is ``"hit"``/``"merge"``/``"insert"``; the byte
        arguments are that request's requested bytes, build/rewrite I/O,
        and the size of the image it ran with; ``evictions`` counts
        capacity victims it triggered; the three gauges are the cache's
        state *after* the request.  ``unique_bytes`` may be ``None``
        (event-stream replays cannot reconstruct package overlap) —
        ``cache_efficiency`` then reads ``nan``.
        """
        self.requests += 1
        action_index = _ACTIONS.index(action)
        self._actions.append(action_index)
        self._action_counts[action_index] += 1
        if len(self._actions) > self.window:
            self._action_counts[self._actions.popleft()] -= 1
        self._evictions.push(float(evictions))
        self._written.push(float(bytes_written))
        self._requested.push(float(requested_bytes))
        self._used.push(float(used_bytes))
        bucket = -1 if latency_s is None else self._bucket_of(latency_s)
        self._lat_buckets.append(bucket)
        if bucket >= 0:
            self._lat_counts[bucket] += 1
        if len(self._lat_buckets) > self.window:
            expired = self._lat_buckets.popleft()
            if expired >= 0:
                self._lat_counts[expired] -= 1
        self._cached_bytes = cached_bytes
        self._unique_bytes = unique_bytes
        self._images = images

    # -- derived series ----------------------------------------------------

    @property
    def window_requests(self) -> int:
        """How many requests the window currently holds (≤ ``window``)."""
        return len(self._actions)

    def latency_quantile(self, q: float) -> float:
        """Windowed request-latency quantile (``nan`` with no samples)."""
        return quantile_from_buckets(self._uppers, self._lat_counts, q)

    def values(self) -> Dict[str, float]:
        """Every windowed series as a flat name → float mapping.

        Rates are per-request over the current window contents; empty
        windows yield ``nan`` so alert conditions (which treat ``nan``
        as not-breaching) stay quiet until data arrives.
        """
        n = len(self._actions)
        nan = float("nan")
        if n:
            hit_rate = self._action_counts[0] / n
            merge_rate = self._action_counts[1] / n
            insert_rate = self._action_counts[2] / n
            eviction_rate = self._evictions.sum / n
            write_rate = self._written.sum / n
            requested_rate = self._requested.sum / n
        else:
            hit_rate = merge_rate = insert_rate = nan
            eviction_rate = write_rate = requested_rate = nan
        used = self._used.sum
        container_eff = self._requested.sum / used if used else nan
        if self._unique_bytes is None:
            cache_eff = nan
        elif self._cached_bytes:
            cache_eff = self._unique_bytes / self._cached_bytes
        else:
            cache_eff = 1.0
        occupancy = (
            self._cached_bytes / self.capacity
            if self.capacity
            else nan
        )
        out = {
            "window_requests": float(n),
            "hit_rate": hit_rate,
            "merge_rate": merge_rate,
            "insert_rate": insert_rate,
            "eviction_rate": eviction_rate,
            "write_bytes_per_request": write_rate,
            "requested_bytes_per_request": requested_rate,
            "container_efficiency": container_eff,
            "cache_efficiency": cache_eff,
            "occupancy": occupancy,
            "images": float(self._images),
            "latency_p50": self.latency_quantile(0.50),
            "latency_p95": self.latency_quantile(0.95),
            "latency_p99": self.latency_quantile(0.99),
        }
        out.update(self._extras)
        return out

    def export_to(self, registry) -> None:
        """Mirror the current window into ``slo_*`` gauges.

        Called by the ``/metrics`` handler on every scrape, so scrapes
        see the freshest window without the hot path paying for gauge
        writes per request.  ``nan`` series (empty window, latency not
        measured) are skipped rather than exported.
        """
        gauges = registry.gauge(
            "slo_window",
            "Rolling-window SLO series (window of "
            f"{self.window} requests).",
            labelnames=("series",),
        )
        for name, value in self.values().items():
            if not math.isnan(value):
                gauges.set(value, series=name)
