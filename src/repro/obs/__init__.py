"""Observability layer: metrics, timing spans, decision traces, streams.

``repro.obs`` is the measurement substrate for the LANDLORD
reproduction.  It is zero-dependency and strictly opt-in: nothing in
this package is global, every instrumentation site in the core is
guarded by one ``is not None`` check (the disabled path is benchmarked
at <2% overhead in ``benchmarks/test_obs_overhead.py``), and attaching
a tracer never perturbs cache decisions.

Modules:

- :mod:`repro.obs.metrics` — ``MetricsRegistry`` with Counter / Gauge /
  fixed-bucket Histogram families, Prometheus-text and JSON export, and
  deterministic cross-process snapshot merging.
- :mod:`repro.obs.timing` — nestable ``perf_counter`` spans recording
  into ``*_seconds`` histograms.
- :mod:`repro.obs.trace` — per-request ``RequestTrace`` records and the
  ``explain`` renderer behind ``repro-landlord explain``.
- :mod:`repro.obs.stream` — JSONL serialisation of the ``CacheEvent``
  log and stats reconstruction from it.

Import discipline (cycle avoidance): modules here import at most
``repro.core.events`` and ``repro.util`` at module scope, so
``repro.core.cache`` may import ``repro.obs`` freely.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_TIME_BUCKETS,
    DISTANCE_BUCKETS,
    load_registry,
    save_registry,
)
from .stream import (
    event_from_jsonable,
    event_to_jsonable,
    iter_event_stream,
    read_event_stream,
    stats_from_events,
    write_event_stream,
)
from .timing import SpanClock
from .trace import (
    DecisionTracer,
    RequestTrace,
    TracedCandidate,
    TracedEviction,
    read_traces,
    write_traces,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DISTANCE_BUCKETS",
    "load_registry",
    "save_registry",
    "SpanClock",
    "DecisionTracer",
    "RequestTrace",
    "TracedCandidate",
    "TracedEviction",
    "read_traces",
    "write_traces",
    "event_to_jsonable",
    "event_from_jsonable",
    "write_event_stream",
    "read_event_stream",
    "iter_event_stream",
    "stats_from_events",
]
