"""Observability layer: metrics, timing spans, decision traces, streams.

``repro.obs`` is the measurement substrate for the LANDLORD
reproduction.  It is zero-dependency and strictly opt-in: nothing in
this package is global, every instrumentation site in the core is
guarded by one ``is not None`` check (the disabled path is benchmarked
at <2% overhead in ``benchmarks/test_obs_overhead.py``), and attaching
a tracer never perturbs cache decisions.

Modules:

- :mod:`repro.obs.metrics` — ``MetricsRegistry`` with Counter / Gauge /
  fixed-bucket Histogram families, Prometheus-text and JSON export, and
  deterministic cross-process snapshot merging.
- :mod:`repro.obs.timing` — nestable ``perf_counter`` spans recording
  into ``*_seconds`` histograms.
- :mod:`repro.obs.clock` — the hybrid span clock: monotonic durations
  anchored to a wall-clock epoch, injectable/frozen for tests.
- :mod:`repro.obs.spans` — distributed request tracing: W3C
  ``traceparent`` context propagation, a bounded span ring buffer
  feeding ``service_stage_seconds{stage=...}`` histograms, and the
  ASCII waterfall renderer behind ``repro-landlord trace``.
- :mod:`repro.obs.trace` — per-request ``RequestTrace`` records and the
  ``explain`` renderer behind ``repro-landlord explain``.
- :mod:`repro.obs.stream` — JSONL serialisation of the ``CacheEvent``
  log and stats reconstruction from it (torn final lines from a crash
  mid-write heal like the journal's).
- :mod:`repro.obs.slo` — rolling-window derived telemetry (windowed
  hit rate, byte rates, efficiency, latency quantiles) updated on the
  hot path behind the same guards.
- :mod:`repro.obs.alerts` — declarative threshold+for-duration alert
  rules over the windowed series, with firing/resolved life-cycles
  exported as metrics, JSONL, and an exit code.
- :mod:`repro.obs.server` — embedded threaded HTTP endpoint serving
  ``/metrics``, ``/healthz``, ``/statusz``, and ``/traces/<n>``.
- :mod:`repro.obs.dashboard` — the ``repro-landlord top`` renderer
  (attach to a live server or replay an event stream).
- :mod:`repro.obs.promcheck` — the strict Prometheus / OpenMetrics
  text-format validators shared by tests and the CI scrape smoke steps.
- :mod:`repro.obs.telemetry` — the cluster-wide telemetry plane:
  workers push registry snapshots to a parent collector over loopback
  HTTP; one scrape serves per-worker labelled series plus a
  deterministic aggregate.

Import discipline (cycle avoidance): modules here import at most
``repro.core.events`` and ``repro.util`` at module scope, so
``repro.core.cache`` may import ``repro.obs`` freely.
"""

from .clock import (
    FrozenClock,
    HybridClock,
    default_clock,
    set_default_clock,
)
from .spans import (
    SERVICE_STAGES,
    ActiveSpan,
    Span,
    SpanRecorder,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    render_waterfall,
)
from .alerts import (
    AlertEngine,
    AlertRule,
    AlertTransition,
    DEFAULT_RULES,
    load_rules,
    parse_rule,
    read_transitions,
    write_transitions,
)
from .dashboard import EventReplay, frames_from_events, render_frame
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_TIME_BUCKETS,
    DISTANCE_BUCKETS,
    OPENMETRICS_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    load_registry,
    save_registry,
)
from .stream import (
    event_from_jsonable,
    event_to_jsonable,
    iter_event_stream,
    read_event_stream,
    stats_from_events,
    write_event_stream,
)
from .promcheck import validate_openmetrics_text, validate_prometheus_text
from .server import ObsServer, build_status
from .telemetry import (
    TelemetryAggregator,
    TelemetryCollector,
    TelemetryPusher,
    label_snapshot,
)
from .slo import DEFAULT_WINDOW, SLO_SERIES, RollingWindow, SloTracker
from .timing import SpanClock
from .trace import (
    DecisionTracer,
    RequestTrace,
    TracedCandidate,
    TracedEviction,
    read_traces,
    write_traces,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DISTANCE_BUCKETS",
    "load_registry",
    "save_registry",
    "SpanClock",
    "FrozenClock",
    "HybridClock",
    "default_clock",
    "set_default_clock",
    "SERVICE_STAGES",
    "ActiveSpan",
    "Span",
    "SpanRecorder",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "render_waterfall",
    "DecisionTracer",
    "RequestTrace",
    "TracedCandidate",
    "TracedEviction",
    "read_traces",
    "write_traces",
    "event_to_jsonable",
    "event_from_jsonable",
    "write_event_stream",
    "read_event_stream",
    "iter_event_stream",
    "stats_from_events",
    "AlertEngine",
    "AlertRule",
    "AlertTransition",
    "DEFAULT_RULES",
    "load_rules",
    "parse_rule",
    "read_transitions",
    "write_transitions",
    "EventReplay",
    "frames_from_events",
    "render_frame",
    "ObsServer",
    "build_status",
    "OPENMETRICS_CONTENT_TYPE",
    "PROMETHEUS_CONTENT_TYPE",
    "TelemetryAggregator",
    "TelemetryCollector",
    "TelemetryPusher",
    "label_snapshot",
    "validate_openmetrics_text",
    "validate_prometheus_text",
    "DEFAULT_WINDOW",
    "SLO_SERIES",
    "RollingWindow",
    "SloTracker",
]
