"""Shared utilities: seeded RNG plumbing, byte units, text tables and plots.

Nothing in here is specific to LANDLORD; these are the small deterministic
helpers every substrate relies on.  Keeping them in one place makes the
simulation fully reproducible: all randomness flows from a single root seed
through :func:`repro.util.rng.spawn`.
"""

from repro.util.rng import RngFactory, spawn
from repro.util.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    TB,
    TiB,
    format_bytes,
    parse_bytes,
)

__all__ = [
    "RngFactory",
    "spawn",
    "KB",
    "MB",
    "GB",
    "TB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "format_bytes",
    "parse_bytes",
]
