"""Minimal ASCII line plots for terminal figure output.

The experiment CLIs print each reproduced figure both as a table of series and
as an ASCII chart so the *shape* (the thing we are reproducing) is visible
without matplotlib, which is not installed in the offline environment.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = ["line_plot", "Series"]

_MARKERS = "*o+x#@%&"


class Series:
    """A named (x, y) series for :func:`line_plot`."""

    def __init__(self, name: str, xs: Sequence[float], ys: Sequence[float]):
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        self.name = name
        self.xs = [float(v) for v in xs]
        self.ys = [float(v) for v in ys]


def _finite(values: Sequence[float]) -> List[float]:
    return [v for v in values if math.isfinite(v)]


def line_plot(
    series: Sequence[Series],
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    xlabel: Optional[str] = None,
    ylabel: Optional[str] = None,
) -> str:
    """Render series onto a character grid; later series overdraw earlier.

    Returns the plot as a single string (no trailing newline).  Empty or
    all-NaN input degrades to a labelled empty frame rather than raising —
    experiment code should never crash on a degenerate sweep.
    """
    all_x = _finite([x for s in series for x in s.xs])
    all_y = _finite([y for s in series for y in s.ys])
    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    if not all_x or not all_y:
        lines.append("(no data)")
        return "\n".join(lines)

    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    for idx, s in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(s.xs, s.ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            grid[to_row(y)][to_col(x)] = marker

    y_labels = [f"{y_hi:.4g}"] + [""] * (height - 2) + [f"{y_lo:.4g}"]
    label_width = max(len(lbl) for lbl in y_labels)
    for row, lbl in zip(grid, y_labels):
        lines.append(f"{lbl:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}"
    lines.append(" " * (label_width + 2) + x_axis)
    if xlabel:
        lines.append(" " * (label_width + 2) + xlabel.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}" for i, s in enumerate(series)
    )
    if ylabel:
        legend = f"y: {ylabel}   " + legend
    lines.append(legend)
    return "\n".join(lines)
