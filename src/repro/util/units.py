"""Byte-size units, parsing and human-readable formatting.

All sizes in the simulation are integers of bytes.  The paper reports sizes
in decimal units (GB/TB), so the decimal constants are the primary ones;
binary (GiB/TiB) are provided for completeness.
"""

from __future__ import annotations

import re
from typing import Union

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "format_bytes",
    "parse_bytes",
]

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12
PB = 10**15

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40

_DECIMAL = [("PB", PB), ("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)]

_UNIT_TABLE = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "pb": PB,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
    "k": KB,
    "m": MB,
    "g": GB,
    "t": TB,
    "p": PB,
}

_PARSE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def format_bytes(n: Union[int, float], precision: int = 1) -> str:
    """Render a byte count with the largest decimal unit >= 1.

    >>> format_bytes(1_400_000_000_000)
    '1.4TB'
    >>> format_bytes(512)
    '512B'
    """
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for name, factor in _DECIMAL:
        if n >= factor:
            return f"{sign}{n / factor:.{precision}f}{name}"
    return f"{sign}{n:.0f}B"


def parse_bytes(text: Union[str, int, float]) -> int:
    """Parse a size like ``"1.4TB"``, ``"700 GB"`` or a bare number.

    Unit suffixes are case-insensitive; decimal SI units are assumed for the
    short forms (``K``/``M``/``G``/``T``).  Raises :class:`ValueError` on
    anything unrecognisable or negative.

    >>> parse_bytes("1.4TB")
    1400000000000
    """
    if isinstance(text, (int, float)):
        value = float(text)
        if value < 0:
            raise ValueError(f"negative size: {text!r}")
        return int(value)
    match = _PARSE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(match.group(1))
    unit = match.group(2).lower()
    if unit == "":
        factor = 1
    elif unit in _UNIT_TABLE:
        factor = _UNIT_TABLE[unit]
    else:
        raise ValueError(f"unknown unit {match.group(2)!r} in {text!r}")
    return int(round(value * factor))
