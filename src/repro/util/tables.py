"""Plain-text table rendering for experiment reports.

Deliberately dependency-free: rows are sequences of cells, cells are
stringified, columns are right-padded.  Used by ``repro.analysis.report`` and
the experiment CLIs to print paper-style tables.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table"]


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.6g}"
    return str(cell)


def render_table(
    rows: Iterable[Sequence[object]],
    header: Optional[Sequence[object]] = None,
    align: Optional[str] = None,
) -> str:
    """Render rows into an aligned text table.

    ``align`` is a string of ``'l'``/``'r'`` per column; unspecified columns
    default to left for the first column and right for the rest (the common
    name-then-numbers layout of the paper's tables).

    >>> print(render_table([["a", 1]], header=["name", "n"]))
    name | n
    -----+--
    a    | 1
    """
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    str_header = [_stringify(c) for c in header] if header is not None else None
    all_rows = ([str_header] if str_header else []) + str_rows
    if not all_rows:
        return "(empty table)"
    n_cols = max(len(r) for r in all_rows)
    for r in all_rows:
        r.extend([""] * (n_cols - len(r)))
    widths = [max(len(r[c]) for r in all_rows) for c in range(n_cols)]
    if align is None:
        align = "l" + "r" * (n_cols - 1)
    align = (align + "r" * n_cols)[:n_cols]

    def fmt_row(row: List[str]) -> str:
        cells = []
        for c, cell in enumerate(row):
            if align[c] == "l":
                cells.append(cell.ljust(widths[c]))
            else:
                cells.append(cell.rjust(widths[c]))
        return " | ".join(cells).rstrip()

    lines = []
    if str_header:
        lines.append(fmt_row(str_header))
        lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)
