"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (repository generation,
workload sampling, sweep repetitions) receives its own independent
:class:`numpy.random.Generator` derived from a single root seed.  This keeps
experiments reproducible end-to-end while letting components evolve without
perturbing each other's random streams — adding a draw in the workload
generator does not change the repository that gets generated.

The scheme follows NumPy's recommended ``SeedSequence.spawn`` pattern: a name
is hashed into the entropy pool so that streams are keyed structurally
(``("workload", run_index)``) rather than positionally.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Optional, Union

import numpy as np

SeedLike = Union[int, None, np.random.SeedSequence]

__all__ = ["spawn", "key_to_entropy", "RngFactory"]


def key_to_entropy(key: Iterable[object]) -> list:
    """Map a structural key (tuple of strings/ints) to integer entropy words.

    Strings are CRC32-hashed; integers pass through (masked to 32 bits so
    negative values are representable).  The result feeds
    :class:`numpy.random.SeedSequence` as extra entropy.
    """
    words = []
    for part in key:
        if isinstance(part, (int, np.integer)):
            words.append(int(part) & 0xFFFFFFFF)
        else:
            words.append(zlib.crc32(str(part).encode("utf-8")))
    return words


def spawn(seed: SeedLike, *key: object) -> np.random.Generator:
    """Return an independent generator for ``key`` derived from ``seed``.

    >>> g1 = spawn(42, "workload", 0)
    >>> g2 = spawn(42, "workload", 1)
    >>> bool(g1.integers(1 << 30) != g2.integers(1 << 30))
    True

    The same ``(seed, key)`` pair always yields the same stream.
    """
    if isinstance(seed, np.random.SeedSequence):
        base = seed.entropy
    else:
        base = seed
    entropy = key_to_entropy(key)
    if base is None:
        ss = np.random.SeedSequence(None)
    else:
        ss = np.random.SeedSequence([int(base) & 0xFFFFFFFF] + entropy)
        return np.random.default_rng(ss)
    # Unseeded: still honour the key for stream independence.
    children = ss.spawn(1)[0]
    return np.random.default_rng(children)


class RngFactory:
    """A root seed that hands out named, independent generators.

    Components take an ``RngFactory`` (or a plain seed) and call
    :meth:`get` with a structural key.  Two factories with the same seed
    produce identical streams for identical keys.

    >>> f = RngFactory(7)
    >>> bool(f.get("repo").integers(100) == RngFactory(7).get("repo").integers(100))
    True
    """

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed

    def get(self, *key: object) -> np.random.Generator:
        """Return the generator for the given structural key."""
        return spawn(self.seed, *key)

    def child(self, *key: object) -> "RngFactory":
        """Return a factory whose streams are nested under ``key``.

        Used by sweep machinery: each repetition gets
        ``factory.child("rep", i)`` so per-repetition components draw from
        disjoint streams.
        """
        if self.seed is None:
            return RngFactory(None)
        mixed = zlib.crc32(repr((self.seed,) + key).encode("utf-8"))
        return RngFactory(mixed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed!r})"
