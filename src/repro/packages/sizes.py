"""Package size distributions.

Real software repositories have heavy-tailed package sizes: many small
scripts and configuration packages, a few multi-gigabyte toolchains and
datasets.  A lognormal matches this well and is easy to calibrate to a target
mean, which is how the synthetic SFT repository is pinned to the paper's
aggregate sizes (repo totals in the hundreds of GB, minimal images of a few
GB).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["lognormal_sizes", "mu_for_mean", "size_histogram"]

MIN_PACKAGE_SIZE = 4096  # a package is at least one filesystem block


def mu_for_mean(mean: float, sigma: float) -> float:
    """Return the lognormal ``mu`` giving expectation ``mean`` at ``sigma``.

    E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    return math.log(mean) - sigma * sigma / 2.0


def lognormal_sizes(
    rng: np.random.Generator,
    n: int,
    mean_bytes: float,
    sigma: float = 1.6,
    min_bytes: int = MIN_PACKAGE_SIZE,
    max_bytes: Optional[int] = None,
) -> np.ndarray:
    """Draw ``n`` package sizes (int64 bytes) with the given expectation.

    Sizes are clipped below at ``min_bytes`` (one filesystem block) and,
    optionally, above at ``max_bytes`` to keep single packages from dwarfing
    the repository.  Clipping slightly perturbs the realised mean; callers
    that need an exact total should rescale (see
    :func:`repro.packages.sft.build_sft_repository`).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    mu = mu_for_mean(mean_bytes, sigma)
    draws = rng.lognormal(mean=mu, sigma=sigma, size=n)
    if max_bytes is not None:
        draws = np.minimum(draws, float(max_bytes))
    draws = np.maximum(draws, float(min_bytes))
    return draws.astype(np.int64)


def size_histogram(sizes: np.ndarray, n_bins: int = 12) -> list:
    """Log-spaced (lo, hi, count) histogram rows for report output."""
    sizes = np.asarray(sizes)
    if sizes.size == 0:
        return []
    lo = max(float(sizes.min()), 1.0)
    hi = float(sizes.max())
    if hi <= lo:
        return [(lo, hi, int(sizes.size))]
    edges = np.geomspace(lo, hi, n_bins + 1)
    counts, _ = np.histogram(sizes, bins=edges)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(n_bins)
    ]
