"""Synthetic dependency-DAG generators.

The paper's central observation is that merging only pays off when container
contents have *hierarchical* dependency structure — a compact core of
near-universal transitive dependencies under a long tail of leaf packages
(§VI, Figures 3 and 7).  These generators produce exactly such structures
(plus the unstructured controls) so the experiments can vary structure while
holding everything else constant:

- :func:`layered_dag` — packages arranged in layers; higher layers depend on
  lower ones, with popularity-skewed (Zipf) choice so a few lower packages
  become common transitive dependencies.  This models SFT/RPM/Conda stacks.
- :func:`random_dag` — each package depends on a uniform random subset of
  earlier packages; no popularity skew, no layering.
- :func:`flat` — no dependencies at all; the degenerate control in which a
  spec's closure is the spec itself.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.packages.package import Package, make_package_id
from repro.packages.sizes import lognormal_sizes

__all__ = ["layered_dag", "random_dag", "flat", "LayerSpec"]

Namer = Callable[[int, int], str]  # (layer, index_within_layer) -> package id


def _default_namer(layer: int, index: int) -> str:
    return make_package_id(f"L{layer}-pkg{index:05d}", "1.0")


def _zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalised Zipf probabilities over ranks 1..n with exponent ``s``."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


class LayerSpec:
    """Parameters for one layer of :func:`layered_dag`.

    Attributes:
        count: number of packages in the layer.
        dep_range: inclusive (min, max) number of direct dependencies drawn
            by each package in this layer (ignored for layer 0).
        core_fraction: fraction of dependency picks routed to layer 0
            (the "core") rather than the immediately lower layer.  Layer 1
            draws everything from layer 0 regardless.
        zipf_s: popularity skew of dependency choice within the target
            layer; 0 means uniform.
        mean_size: expected package size in bytes for this layer.
    """

    def __init__(
        self,
        count: int,
        dep_range: Tuple[int, int] = (1, 4),
        core_fraction: float = 0.3,
        zipf_s: float = 1.1,
        mean_size: float = 50e6,
    ):
        if count < 0:
            raise ValueError("layer count must be non-negative")
        lo, hi = dep_range
        if lo < 0 or hi < lo:
            raise ValueError(f"invalid dep_range: {dep_range!r}")
        if not 0.0 <= core_fraction <= 1.0:
            raise ValueError(f"invalid core_fraction: {core_fraction!r}")
        self.count = count
        self.dep_range = (lo, hi)
        self.core_fraction = core_fraction
        self.zipf_s = zipf_s
        self.mean_size = mean_size


def layered_dag(
    rng: np.random.Generator,
    layers: Sequence[LayerSpec],
    namer: Optional[Namer] = None,
    size_sigma: float = 1.6,
) -> List[Package]:
    """Generate a hierarchical dependency DAG.

    Packages in layer ``L`` depend on packages in layer ``L-1`` and (with
    probability ``core_fraction``) on layer 0.  Choices within a layer are
    Zipf-skewed by rank so low-rank packages become widely shared transitive
    dependencies — the structure responsible for the closure amplification
    seen in Figure 3.

    Dependencies always point from higher to lower layers, so the result is
    acyclic by construction.
    """
    if namer is None:
        namer = _default_namer
    if not layers or layers[0].count == 0:
        raise ValueError("layered_dag needs a non-empty base layer")

    layer_ids: List[List[str]] = []
    packages: List[Package] = []

    for layer_idx, spec in enumerate(layers):
        sizes = lognormal_sizes(rng, spec.count, spec.mean_size, size_sigma)
        ids = [namer(layer_idx, i) for i in range(spec.count)]
        if layer_idx == 0:
            for pid, size in zip(ids, sizes):
                packages.append(Package(id=pid, size=int(size)))
            layer_ids.append(ids)
            continue

        lower = layer_ids[layer_idx - 1]
        core = layer_ids[0]
        lower_w = _zipf_weights(len(lower), spec.zipf_s)
        core_w = _zipf_weights(len(core), spec.zipf_s)
        lo, hi = spec.dep_range
        counts = rng.integers(lo, hi + 1, size=spec.count)
        for i, (pid, size, k) in enumerate(zip(ids, sizes, counts)):
            deps = set()
            for _ in range(int(k)):
                use_core = layer_idx == 1 or rng.random() < spec.core_fraction
                if use_core:
                    deps.add(core[int(rng.choice(len(core), p=core_w))])
                else:
                    deps.add(lower[int(rng.choice(len(lower), p=lower_w))])
            deps.discard(pid)
            packages.append(Package(id=pid, size=int(size), deps=tuple(sorted(deps))))
        layer_ids.append(ids)

    return packages


def random_dag(
    rng: np.random.Generator,
    n: int,
    mean_deps: float = 2.0,
    mean_size: float = 50e6,
    size_sigma: float = 1.6,
    namer: Optional[Callable[[int], str]] = None,
) -> List[Package]:
    """Generate an unstructured DAG: package ``i`` depends on a Poisson
    number of uniformly chosen earlier packages.

    Acyclic because edges only point to lower indices.  Used as the
    "arbitrary collections of data" control in Figure 7.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if namer is None:
        namer = lambda i: make_package_id(f"rnd-pkg{i:05d}", "1.0")  # noqa: E731
    sizes = lognormal_sizes(rng, n, mean_size, size_sigma)
    packages: List[Package] = []
    for i in range(n):
        if i == 0:
            deps: Tuple[str, ...] = ()
        else:
            k = min(int(rng.poisson(mean_deps)), i)
            if k > 0:
                picks = rng.choice(i, size=k, replace=False)
                deps = tuple(sorted(namer(int(j)) for j in picks))
            else:
                deps = ()
        packages.append(Package(id=namer(i), size=int(sizes[i]), deps=deps))
    return packages


def flat(
    rng: np.random.Generator,
    n: int,
    mean_size: float = 50e6,
    size_sigma: float = 1.6,
    namer: Optional[Callable[[int], str]] = None,
) -> List[Package]:
    """Generate ``n`` packages with no dependencies at all."""
    if namer is None:
        namer = lambda i: make_package_id(f"flat-pkg{i:05d}", "1.0")  # noqa: E731
    sizes = lognormal_sizes(rng, n, mean_size, size_sigma)
    return [
        Package(id=namer(i), size=int(sizes[i])) for i in range(n)
    ]
