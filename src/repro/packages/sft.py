"""The synthetic SFT repository.

The paper's simulations are driven by a dependency tree extracted from the
CERN SFT CVMFS repository: **9,660 packages**, where *"a program or library
typically provides packages for multiple versions, platforms, and
configurations"* and *"there are a number of core components that are
transitive dependencies of a large number of packages"* (§VI).

We do not have the SFT metadata, so this module rebuilds a repository with
the same statistical shape (see DESIGN.md §2 for the substitution argument):

- **core layer** — ~120 base framework / setup / calibration packages that
  everything transitively depends on;
- **framework layer** — ~2,040 library/toolchain packages depending on the
  core;
- **application layer** — ~7,500 leaf packages (the long tail), each provided
  in several version/platform variants of a project.

Package sizes are lognormal per layer and then rescaled so the repository
totals exactly ``target_total_size`` (default 700 GB, consistent with the
per-experiment CVMFS repo sizes in Figure 2 being measured in TB while SFT
hosts the shared core software).  Figure 3's closure-amplification curve is
regenerated from this repository by ``repro.experiments.fig3_image_size`` and
its shape is asserted by the test suite.
"""

from __future__ import annotations

from typing import List, Optional

from repro.packages.depgen import LayerSpec, layered_dag, random_dag, flat
from repro.packages.package import Package, make_package_id
from repro.packages.repository import Repository
from repro.util.rng import spawn
from repro.util.units import GB, MB

__all__ = [
    "SFT_PACKAGE_COUNT",
    "build_sft_repository",
    "build_experiment_repository",
    "sft_layers",
]

SFT_PACKAGE_COUNT = 9660

_CORE_COUNT = 150
_FRAMEWORK_COUNT = 3500
_APP_COUNT = SFT_PACKAGE_COUNT - _CORE_COUNT - _FRAMEWORK_COUNT

_FRAMEWORK_VERSIONS = 3  # versions per framework project
_APP_VARIANTS = 4  # version x platform variants per application project

_PLATFORMS = ("x86_64-el7", "x86_64-el9", "aarch64-el9", "x86_64-ubuntu22")


def sft_layers(
    core_mean: float = 400 * MB,
    framework_mean: float = 100 * MB,
    app_mean: float = 40 * MB,
) -> List[LayerSpec]:
    """The three-layer structure of the synthetic SFT repository."""
    return [
        LayerSpec(count=_CORE_COUNT, mean_size=core_mean),
        LayerSpec(
            count=_FRAMEWORK_COUNT,
            dep_range=(3, 7),
            zipf_s=0.6,
            mean_size=framework_mean,
        ),
        LayerSpec(
            count=_APP_COUNT,
            dep_range=(4, 9),
            core_fraction=0.3,
            zipf_s=0.4,
            mean_size=app_mean,
        ),
    ]


def _sft_namer(layer: int, index: int) -> str:
    """Deterministic SFT-style naming with version/platform variants."""
    if layer == 0:
        return make_package_id(f"core-{index:03d}", "1.0")
    if layer == 1:
        project, version = divmod(index, _FRAMEWORK_VERSIONS)
        return make_package_id(f"fw-{project:04d}", f"{version + 1}.0")
    project, variant = divmod(index, _APP_VARIANTS)
    version = variant // len(_PLATFORMS) + 1
    platform = _PLATFORMS[variant % len(_PLATFORMS)]
    return make_package_id(f"app-{project:04d}", f"{version}.{variant}", platform)


def _rescale_sizes(packages: List[Package], target_total: int) -> List[Package]:
    """Proportionally rescale sizes so the repository totals ``target_total``."""
    current = sum(p.size for p in packages)
    if current == 0:
        return packages
    factor = target_total / current
    rescaled = [
        Package(id=p.id, size=max(1, int(round(p.size * factor))), deps=p.deps)
        for p in packages
    ]
    # Absorb integer-rounding drift into the largest package so the total is
    # exact; experiments compare cache sizes against repo multiples.
    drift = target_total - sum(p.size for p in rescaled)
    if drift:
        biggest = max(range(len(rescaled)), key=lambda i: rescaled[i].size)
        p = rescaled[biggest]
        rescaled[biggest] = Package(id=p.id, size=p.size + drift, deps=p.deps)
    return rescaled


def build_sft_repository(
    seed: Optional[int] = 2020,
    n_packages: int = SFT_PACKAGE_COUNT,
    target_total_size: int = 700 * GB,
) -> Repository:
    """Build the synthetic SFT repository.

    ``n_packages`` scales the whole structure proportionally (used by quick
    test/bench configurations); the layer ratio and dependency parameters are
    fixed.  The same ``seed`` always yields the identical repository.
    """
    if n_packages < 10:
        raise ValueError("n_packages must be at least 10")
    rng = spawn(seed, "sft-repo", n_packages)
    scale = n_packages / SFT_PACKAGE_COUNT
    layers = sft_layers()
    counts = [
        max(3, int(round(_CORE_COUNT * scale))),
        max(3, int(round(_FRAMEWORK_COUNT * scale))),
    ]
    counts.append(max(1, n_packages - sum(counts)))
    for spec, count in zip(layers, counts):
        spec.count = count
    packages = layered_dag(rng, layers, namer=_sft_namer)
    packages = _rescale_sizes(packages, target_total_size)
    return Repository(packages)


def build_experiment_repository(
    kind: str,
    seed: Optional[int] = 2020,
    n_packages: int = SFT_PACKAGE_COUNT,
    target_total_size: int = 700 * GB,
) -> Repository:
    """Build one of the repository structures compared in the evaluation.

    ``kind`` is ``"sft"`` (hierarchical, the paper's main configuration),
    ``"random"`` (unstructured DAG) or ``"flat"`` (no dependencies).
    """
    if kind == "sft":
        return build_sft_repository(seed, n_packages, target_total_size)
    rng = spawn(seed, f"{kind}-repo", n_packages)
    if kind == "random":
        packages = random_dag(rng, n_packages)
    elif kind == "flat":
        packages = flat(rng, n_packages)
    else:
        raise ValueError(f"unknown repository kind: {kind!r}")
    packages = _rescale_sizes(packages, target_total_size)
    return Repository(packages)
