"""Software-repository substrate.

The paper treats a container specification as a set of packages drawn from a
structured software repository (CVMFS/SFT for the LHC case study).  This
subpackage models such repositories:

- :mod:`repro.packages.package` — the package record (unique name/version id,
  on-disk size, declared dependencies).
- :mod:`repro.packages.repository` — the repository container with memoised
  transitive dependency closure, the operation every experiment relies on.
- :mod:`repro.packages.depgen` — synthetic dependency-DAG generators
  (hierarchical/layered like real software stacks, uniform random, flat).
- :mod:`repro.packages.sizes` — package size distributions.
- :mod:`repro.packages.sft` — the SFT-like 9,660-package repository used by
  the paper's simulations, rebuilt synthetically and calibrated to Figure 3.
- :mod:`repro.packages.conflicts` — version-constraint conflict policies.
"""

from repro.packages.conflicts import (
    ConflictPolicy,
    NoConflicts,
    SlotConflicts,
)
from repro.packages.io import load_repository, save_repository
from repro.packages.package import Package, make_package_id, split_package_id
from repro.packages.repository import Repository, RepositoryError
from repro.packages.resolve import (
    DependencySolver,
    Requirement,
    Resolution,
    UnsatisfiableError,
)
from repro.packages.sft import build_sft_repository

__all__ = [
    "Package",
    "make_package_id",
    "split_package_id",
    "Repository",
    "RepositoryError",
    "save_repository",
    "load_repository",
    "build_sft_repository",
    "ConflictPolicy",
    "NoConflicts",
    "SlotConflicts",
    "Requirement",
    "DependencySolver",
    "Resolution",
    "UnsatisfiableError",
]
