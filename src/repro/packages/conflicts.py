"""Version-constraint conflict policies.

Algorithm 1 merges two specifications only *"if s and j do not conflict"*.
What counts as a conflict depends on the package-management system:

- CVMFS is append-only; every version coexists, so nothing ever conflicts
  (the paper: *"For LHC applications this is a non-issue"*).  That is
  :class:`NoConflicts`, the default everywhere.
- Conventional package managers install one version per name ("slot"), so
  two specs demanding different versions of the same slot cannot share an
  image.  :class:`SlotConflicts` models this.

Policies are deliberately tiny objects so the cache can call them millions
of times during sweeps.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, List, Mapping, Optional, Set

from repro.packages.package import split_package_id

__all__ = ["ConflictPolicy", "NoConflicts", "SlotConflicts"]


class ConflictPolicy:
    """Interface: decide whether two package sets can share one image."""

    def conflicts(self, a: Iterable[str], b: Iterable[str]) -> bool:
        """Return True if the union of ``a`` and ``b`` is unsatisfiable."""
        raise NotImplementedError

    def describe(self) -> str:
        """Stable identity string for this policy's merge semantics.

        Persisted cache snapshots record it so a restore under a policy
        with *different* semantics is rejected instead of silently
        changing which merges are legal.  Policies whose behaviour
        depends on configuration must fold that configuration into the
        string (see :meth:`SlotConflicts.describe`).
        """
        return type(self).__name__

    def conflicting_slots(
        self, a: Iterable[str], b: Iterable[str]
    ) -> List[str]:
        """Return the slots responsible for a conflict (empty if none).

        Used by error reporting and tests; the base implementation reports
        nothing, matching :meth:`conflicts` returning False.
        """
        return []


class NoConflicts(ConflictPolicy):
    """Append-only repositories: all versions coexist, merging always legal."""

    def conflicts(self, a: Iterable[str], b: Iterable[str]) -> bool:
        """Always False: append-only repositories never conflict."""
        return False


class SlotConflicts(ConflictPolicy):
    """One version per slot: differing versions of a slot conflict.

    The slot of a package id defaults to its name component; an explicit
    ``slot_of`` mapping can override this (e.g. to model co-installable
    variants such as ``python3.9`` vs ``python3.10`` that a repository
    nevertheless packages under one name).
    """

    def __init__(self, slot_of: Optional[Mapping[str, str]] = None):
        self._slot_of = slot_of

    def describe(self) -> str:
        """Identity including a digest of any explicit slot mapping."""
        if not self._slot_of:
            return type(self).__name__
        canon = json.dumps(sorted(self._slot_of.items()))
        digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]
        return f"{type(self).__name__}[{digest}]"

    def _slot(self, package_id: str) -> str:
        if self._slot_of is not None:
            slot = self._slot_of.get(package_id)
            if slot is not None:
                return slot
        return split_package_id(package_id)[0]

    def _slot_map(self, ids: Iterable[str]) -> Mapping[str, Set[str]]:
        slots: dict = {}
        for pid in ids:
            slots.setdefault(self._slot(pid), set()).add(pid)
        return slots

    def conflicts(self, a: Iterable[str], b: Iterable[str]) -> bool:
        """True when some slot would hold two different versions."""
        return bool(self.conflicting_slots(a, b))

    def conflicting_slots(
        self, a: Iterable[str], b: Iterable[str]
    ) -> List[str]:
        """The sorted slots whose version sets clash across a and b."""
        slots_a = self._slot_map(a)
        slots_b = self._slot_map(b)
        bad: List[str] = []
        for slot, ids_a in slots_a.items():
            ids_b = slots_b.get(slot)
            merged = ids_a | ids_b if ids_b else ids_a
            if len(merged) > 1:
                bad.append(slot)
        for slot, ids_b in slots_b.items():
            if slot not in slots_a and len(ids_b) > 1:
                bad.append(slot)
        return sorted(bad)
