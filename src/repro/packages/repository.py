"""Repository: package lookup and memoised transitive dependency closure.

The closure operation (*"when building a simulated image, we recursively
include dependencies of requested software"*, §VI) is on the hot path of
every experiment — each simulated job request expands an initial selection
into a full image.  Closures are therefore memoised per package: the closure
of a package is itself plus the union of its dependencies' closures, and a
multi-package request is the union of per-package closures.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional

import numpy as np

from repro.packages.package import Package

__all__ = ["Repository", "RepositoryError"]


class RepositoryError(ValueError):
    """Raised for malformed repositories: missing deps or dependency cycles."""


class Repository:
    """An immutable collection of packages forming a dependency DAG.

    Construction validates that every declared dependency exists and that the
    dependency graph is acyclic (real package repositories are DAGs; SFT
    build metadata yields a tree-like structure).

    The repository also serves as the size oracle: :meth:`bytes_of` maps any
    set of package ids to its total installed size, which is what the cache
    simulation charges for image storage and I/O.
    """

    def __init__(self, packages: Iterable[Package]):
        self._packages: Dict[str, Package] = {}
        for pkg in packages:
            if pkg.id in self._packages:
                raise RepositoryError(f"duplicate package id: {pkg.id!r}")
            self._packages[pkg.id] = pkg
        for pkg in self._packages.values():
            for dep in pkg.deps:
                if dep not in self._packages:
                    raise RepositoryError(
                        f"package {pkg.id!r} depends on missing {dep!r}"
                    )
        self._closures: Dict[str, FrozenSet[str]] = {}
        self._check_acyclic()
        self._ids: List[str] = sorted(self._packages)
        self._total_size: Optional[int] = None
        # Optional packed closure matrix adopted from another process
        # (see install_packed_closures); rows decode lazily on demand.
        self._packed_closures: Optional[np.ndarray] = None
        self._row_index: Optional[Dict[str, int]] = None

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._packages)

    def __contains__(self, package_id: str) -> bool:
        return package_id in self._packages

    def __iter__(self) -> Iterator[str]:
        return iter(self._ids)

    def __getitem__(self, package_id: str) -> Package:
        try:
            return self._packages[package_id]
        except KeyError:
            raise KeyError(f"unknown package: {package_id!r}") from None

    @property
    def ids(self) -> List[str]:
        """All package ids in deterministic (sorted) order."""
        return list(self._ids)

    @property
    def packages(self) -> Mapping[str, Package]:
        """Read-only view of the id -> package mapping."""
        return dict(self._packages)

    # -- validation ----------------------------------------------------------

    def _check_acyclic(self) -> None:
        """Iterative three-colour DFS; raises on the first back-edge found."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {pid: WHITE for pid in self._packages}
        for root in self._packages:
            if colour[root] != WHITE:
                continue
            stack: List[tuple] = [(root, iter(self._packages[root].deps))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for dep in it:
                    if colour[dep] == GREY:
                        raise RepositoryError(
                            f"dependency cycle through {dep!r}"
                        )
                    if colour[dep] == WHITE:
                        colour[dep] = GREY
                        stack.append((dep, iter(self._packages[dep].deps)))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()

    # -- closures ------------------------------------------------------------

    def closure_of(self, package_id: str) -> FrozenSet[str]:
        """Transitive dependency closure of one package (includes itself)."""
        cached = self._closures.get(package_id)
        if cached is not None:
            return cached
        pkg = self._packages.get(package_id)
        if pkg is None:
            raise KeyError(f"unknown package: {package_id!r}")
        if self._packed_closures is not None:
            return self._decode_closure_row(package_id)
        # Iterative post-order so deep chains don't hit the recursion limit.
        order: List[str] = []
        seen = set()
        stack = [package_id]
        while stack:
            node = stack.pop()
            if node in seen or node in self._closures:
                continue
            seen.add(node)
            order.append(node)
            stack.extend(self._packages[node].deps)
        # Process in reverse discovery order; dependencies of a node were
        # discovered after it, so by the time we pop back to it they resolve
        # either from the memo or from this batch.
        for node in reversed(order):
            acc = {node}
            for dep in self._packages[node].deps:
                acc |= self._closures.get(dep) or self.closure_of(dep)
            self._closures[node] = frozenset(acc)
        return self._closures[package_id]

    def warm_closures(self) -> None:
        """Memoise every package's closure in one pass over the DAG.

        Sweeps call this in the parent before forking workers so the
        whole memo is inherited and no worker re-walks the DAG — the
        per-worker warm-up this amortises dominates small parallel
        sweeps.
        """
        for pid in self._ids:
            self.closure_of(pid)

    def closure_matrix(self) -> np.ndarray:
        """All closures as a packed bit-matrix in sorted-id order.

        Row ``i`` holds the closure of ``self.ids[i]`` as little-endian
        packed bits over column indices into the same sorted order —
        a position-independent encoding another process can adopt via
        :meth:`install_packed_closures` (typically through
        :class:`repro.parallel.shm.SharedPackedMatrix`) instead of
        recomputing closures.
        """
        n = len(self._ids)
        row_index = {pid: i for i, pid in enumerate(self._ids)}
        matrix = np.zeros((n, (n + 7) // 8), dtype=np.uint8)
        bits = np.zeros(n, dtype=np.uint8)
        for i, pid in enumerate(self._ids):
            closure = self.closure_of(pid)
            bits[:] = 0
            bits[[row_index[p] for p in closure]] = 1
            matrix[i] = np.packbits(bits, bitorder="little")
        return matrix

    def install_packed_closures(self, packed: np.ndarray) -> None:
        """Adopt a packed closure matrix from :meth:`closure_matrix`.

        Must come from an identical repository (same ids, same deps) —
        the shape is validated, the contents are trusted.  Subsequent
        closure misses decode one matrix row (a single ``unpackbits``)
        instead of walking the dependency DAG; already-memoised
        closures are kept.
        """
        n = len(self._ids)
        expected = (n, (n + 7) // 8)
        if tuple(packed.shape) != expected:
            raise ValueError(
                f"packed closure matrix shape {tuple(packed.shape)} does "
                f"not match this repository (expected {expected})"
            )
        self._packed_closures = packed
        self._row_index = {pid: i for i, pid in enumerate(self._ids)}

    def _decode_closure_row(self, package_id: str) -> FrozenSet[str]:
        bits = np.unpackbits(
            self._packed_closures[self._row_index[package_id]],
            bitorder="little",
            count=len(self._ids),
        )
        ids = self._ids
        closure = frozenset(ids[int(j)] for j in np.flatnonzero(bits))
        self._closures[package_id] = closure
        return closure

    def closure(self, package_ids: Iterable[str]) -> FrozenSet[str]:
        """Closure of a set of packages: union of per-package closures.

        This is the "expand a selection into a full image" operation used by
        the workload generators (paper §VI, *Simulating HTC Jobs*).
        """
        acc: set = set()
        for pid in package_ids:
            acc |= self.closure_of(pid)
        return frozenset(acc)

    # -- sizes ---------------------------------------------------------------

    def size_of(self, package_id: str) -> int:
        """Installed size of a single package in bytes."""
        return self[package_id].size

    def bytes_of(self, package_ids: Iterable[str]) -> int:
        """Total installed size of a set of packages in bytes.

        Duplicates in the input are counted once (inputs are treated as a
        set, matching image semantics: an image holds one copy per package).
        """
        seen = set()
        total = 0
        for pid in package_ids:
            if pid in seen:
                continue
            seen.add(pid)
            total += self[pid].size
        return total

    @property
    def total_size(self) -> int:
        """Total installed size of the whole repository in bytes."""
        if self._total_size is None:
            self._total_size = sum(p.size for p in self._packages.values())
        return self._total_size

    # -- structure stats -----------------------------------------------------

    def dependents_index(self) -> Dict[str, List[str]]:
        """Reverse-dependency index: id -> ids that directly depend on it."""
        index: Dict[str, List[str]] = {pid: [] for pid in self._packages}
        for pkg in self._packages.values():
            for dep in pkg.deps:
                index[dep].append(pkg.id)
        return index

    def stats(self) -> Dict[str, float]:
        """Summary statistics used in reports and sanity tests."""
        n = len(self._packages)
        dep_counts = [len(p.deps) for p in self._packages.values()]
        return {
            "packages": n,
            "total_size": self.total_size,
            "mean_size": self.total_size / n if n else 0.0,
            "mean_direct_deps": sum(dep_counts) / n if n else 0.0,
            "max_direct_deps": max(dep_counts) if dep_counts else 0,
            "roots": sum(1 for c in dep_counts if c == 0),
        }
