"""The package record.

Following the paper (§V, "Similarity Metric"): *"each package is usually
assigned a name/version string that is defined to be unique within the
repo"*.  We use that unique string as the package id everywhere; sets of ids
are the universe over which Jaccard distances are computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["Package", "make_package_id", "split_package_id"]

_SEP = "/"


def make_package_id(name: str, version: str, variant: str = "") -> str:
    """Compose the unique repository id for a package.

    ``variant`` captures the platform/configuration axis of SFT-style repos
    (e.g. ``x86_64-centos7-gcc8-opt``); empty for single-variant packages.

    >>> make_package_id("ROOT", "6.20.04", "x86_64-el9")
    'ROOT/6.20.04/x86_64-el9'
    """
    if not name or _SEP in name:
        raise ValueError(f"invalid package name: {name!r}")
    if not version or _SEP in version:
        raise ValueError(f"invalid package version: {version!r}")
    if _SEP in variant:
        raise ValueError(f"invalid package variant: {variant!r}")
    if variant:
        return f"{name}{_SEP}{version}{_SEP}{variant}"
    return f"{name}{_SEP}{version}"


def split_package_id(package_id: str) -> Tuple[str, str, str]:
    """Split an id back into ``(name, version, variant)``.

    >>> split_package_id("ROOT/6.20.04")
    ('ROOT', '6.20.04', '')
    """
    parts = package_id.split(_SEP)
    if len(parts) == 2:
        return parts[0], parts[1], ""
    if len(parts) == 3:
        return parts[0], parts[1], parts[2]
    raise ValueError(f"invalid package id: {package_id!r}")


@dataclass(frozen=True)
class Package:
    """An immutable package record.

    Attributes:
        id: unique ``name/version[/variant]`` string within the repository.
        size: installed on-disk size in bytes (> 0 for real packages;
            0 is allowed for pure meta-packages).
        deps: ids of *direct* dependencies.  Transitive closure is the
            repository's job, mirroring how the paper extracts a dependency
            tree from SFT build metadata.
        slot: the compatibility slot used for conflict checking.  Defaults
            to the package name: two versions of one program occupy the same
            slot and may be declared mutually exclusive by a
            :class:`~repro.packages.conflicts.SlotConflicts` policy.
    """

    id: str
    size: int
    deps: Tuple[str, ...] = ()
    slot: str = field(default="")

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"package {self.id!r} has negative size")
        if self.id in self.deps:
            raise ValueError(f"package {self.id!r} depends on itself")
        if not self.slot:
            object.__setattr__(self, "slot", split_package_id(self.id)[0])

    @property
    def name(self) -> str:
        """The program/library name component of the id."""
        return split_package_id(self.id)[0]

    @property
    def version(self) -> str:
        """The version component of the id."""
        return split_package_id(self.id)[1]

    @property
    def variant(self) -> str:
        """The platform/configuration component of the id ('' if none)."""
        return split_package_id(self.id)[2]
