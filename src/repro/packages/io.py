"""Repository serialisation: JSON-lines interchange format.

A downstream site will not use our synthetic generator — it has a real
package database (RPM metadata, Conda channels, CVMFS build info).  This
module defines the interchange format that decouples the library from the
generator: one JSON object per package::

    {"id": "ROOT/6.20.04/x86_64-el9", "size": 2600000000,
     "deps": ["gcc/8.3.0", "python/3.9.6"]}

``load_repository`` validates through the normal
:class:`~repro.packages.repository.Repository` constructor (missing deps
and cycles are rejected with line context), so a hand-edited file fails
loudly at load time rather than corrupting a simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.packages.package import Package
from repro.packages.repository import Repository, RepositoryError

__all__ = ["save_repository", "load_repository"]

PathLike = Union[str, Path]


def save_repository(path: PathLike, repository: Repository) -> int:
    """Write a repository as JSON lines; returns the package count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for pid in repository.ids:
            pkg = repository[pid]
            record = {"id": pkg.id, "size": pkg.size}
            if pkg.deps:
                record["deps"] = list(pkg.deps)
            if pkg.slot != pkg.name:
                record["slot"] = pkg.slot
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def load_repository(path: PathLike) -> Repository:
    """Load a JSON-lines repository file (validating structure)."""
    packages = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RepositoryError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            try:
                packages.append(
                    Package(
                        id=record["id"],
                        size=int(record["size"]),
                        deps=tuple(record.get("deps", ())),
                        slot=record.get("slot", ""),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise RepositoryError(
                    f"{path}:{lineno}: invalid package record: {exc}"
                ) from exc
    return Repository(packages)
