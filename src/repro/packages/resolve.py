"""Version-constraint requirements and a small dependency solver.

The paper (§V) notes that *"public software repositories generally support
explicit version constraints, so two specifications may include constraints
that cannot be simultaneously satisfied"*, and that this compatibility
checking *"can be performed after using the Jaccard distance to prioritize
the set of candidate specifications"*.  This module supplies that machinery
for the slot-conflict world (one version per program name):

- :class:`Requirement` — ``name`` plus version constraints, parsed from
  strings like ``"root>=6.18,<6.21"``, ``"gcc==8.3.0"`` or just ``"numpy"``;
- :func:`parse_version` — dotted alphanumeric versions ordered naturally
  (``6.20.04`` > ``6.2.1``, ``1.0rc`` < ``1.0``-free comparisons are kept
  simple: numeric components compare numerically, alphanumeric ones
  lexically);
- :class:`DependencySolver` — chooses one concrete package per requirement
  (newest candidate first, backtracking) such that the union of the
  selections' dependency closures holds at most one version per slot.

Unsatisfiable inputs raise :class:`UnsatisfiableError` carrying a
human-readable explanation of the clash.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.packages.package import split_package_id
from repro.packages.repository import Repository

__all__ = [
    "parse_version",
    "Constraint",
    "Requirement",
    "UnsatisfiableError",
    "Resolution",
    "DependencySolver",
]

_OPS = ("==", "!=", ">=", "<=", ">", "<")

_COMPONENT_RE = re.compile(r"(\d+|[a-zA-Z]+)")


def parse_version(version: str) -> Tuple:
    """Split a version string into comparable components.

    Numeric runs become integers (tagged to sort after strings of the same
    position), alphabetic runs stay strings; separators are ignored.

    >>> parse_version("6.20.04") > parse_version("6.9.1")
    True
    """
    components: List[Tuple[int, object]] = []
    for token in _COMPONENT_RE.findall(version):
        if token.isdigit():
            components.append((1, int(token)))
        else:
            components.append((0, token))
    return tuple(components)


@dataclass(frozen=True)
class Constraint:
    """One version constraint: an operator and a boundary version."""

    op: str
    version: str

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown constraint operator: {self.op!r}")
        if not self.version:
            raise ValueError(f"constraint {self.op!r} lacks a version")

    def satisfied_by(self, version: str) -> bool:
        """True if ``version`` meets this constraint."""
        lhs, rhs = parse_version(version), parse_version(self.version)
        if self.op == "==":
            return version == self.version or lhs == rhs
        if self.op == "!=":
            return version != self.version and lhs != rhs
        if self.op == ">=":
            return lhs >= rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">":
            return lhs > rhs
        return lhs < rhs

    def __str__(self) -> str:
        return f"{self.op}{self.version}"


@dataclass(frozen=True)
class Requirement:
    """A named requirement with zero or more version constraints."""

    name: str
    constraints: Tuple[Constraint, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "Requirement":
        """Parse ``"name"`` / ``"name==1.2"`` / ``"name>=1,<2"``.

        >>> Requirement.parse("root>=6.18,<6.21").name
        'root'
        """
        text = text.strip()
        match = re.match(r"^([\w.+\-]+)\s*(.*)$", text)
        if not match or not match.group(1):
            raise ValueError(f"unparseable requirement: {text!r}")
        name, rest = match.group(1), match.group(2).strip()
        constraints: List[Constraint] = []
        if rest:
            for clause in rest.split(","):
                clause = clause.strip()
                for op in _OPS:
                    if clause.startswith(op):
                        constraints.append(
                            Constraint(op, clause[len(op):].strip())
                        )
                        break
                else:
                    raise ValueError(
                        f"unparseable constraint {clause!r} in {text!r}"
                    )
        return cls(name=name, constraints=tuple(constraints))

    def allows(self, version: str) -> bool:
        """True if every constraint accepts ``version``."""
        return all(c.satisfied_by(version) for c in self.constraints)

    def __str__(self) -> str:
        return self.name + ",".join(str(c) for c in self.constraints)


class UnsatisfiableError(Exception):
    """No assignment of concrete packages satisfies the requirements."""


@dataclass(frozen=True)
class Resolution:
    """A successful solve: requirement → package id, plus the full closure."""

    assignments: Dict[str, str]
    closure: FrozenSet[str]

    @property
    def packages(self) -> FrozenSet[str]:
        return self.closure


class DependencySolver:
    """Pick concrete packages for requirements without slot conflicts.

    Candidates for each requirement are its name's versions (and variants)
    filtered by the constraints, ordered newest-first.  The solver then
    backtracks over candidate choices so that the union of dependency
    closures contains at most one version per slot.  The search is bounded
    by ``max_steps`` — real repositories resolve in a handful of steps, and
    a blow-up indicates genuinely tangled constraints, which is reported as
    unsatisfiable rather than looping forever.
    """

    def __init__(self, repository: Repository, max_steps: int = 10_000):
        self.repository = repository
        self.max_steps = max_steps
        self._by_name: Dict[str, List[str]] = {}
        for pid in repository.ids:
            name, _version, _variant = split_package_id(pid)
            self._by_name.setdefault(name, []).append(pid)
        for name, ids in self._by_name.items():
            ids.sort(
                key=lambda pid: parse_version(split_package_id(pid)[1]),
                reverse=True,
            )

    def candidates(self, requirement: Requirement) -> List[str]:
        """Concrete package ids satisfying one requirement, newest first."""
        ids = self._by_name.get(requirement.name, [])
        return [
            pid for pid in ids
            if requirement.allows(split_package_id(pid)[1])
        ]

    @staticmethod
    def _slot_clash(closure: Iterable[str]) -> Optional[Tuple[str, str, str]]:
        """Return (slot, id_a, id_b) for the first multi-version slot."""
        seen: Dict[str, str] = {}
        for pid in sorted(closure):
            name, version, _variant = split_package_id(pid)
            held = seen.get(name)
            if held is None:
                seen[name] = pid
            elif split_package_id(held)[1] != version:
                return name, held, pid
        return None

    def solve(
        self,
        requirements: Sequence["Requirement | str"],
        enforce_slots: bool = True,
    ) -> Resolution:
        """Resolve requirements to a conflict-free concrete closure.

        With ``enforce_slots=False`` (the CVMFS append-only world) the
        newest candidate per requirement is taken and coexisting versions
        are fine; with the default, backtracking finds a slot-consistent
        assignment or raises :class:`UnsatisfiableError`.
        """
        parsed = [
            r if isinstance(r, Requirement) else Requirement.parse(r)
            for r in requirements
        ]
        candidate_lists = []
        for requirement in parsed:
            candidates = self.candidates(requirement)
            if not candidates:
                raise UnsatisfiableError(
                    f"no package satisfies {requirement}"
                    + ("" if requirement.name in self._by_name
                       else f" (unknown package {requirement.name!r})")
                )
            candidate_lists.append(candidates)

        if not enforce_slots:
            picks = [candidates[0] for candidates in candidate_lists]
            return Resolution(
                assignments={
                    str(req): pid for req, pid in zip(parsed, picks)
                },
                closure=self.repository.closure(picks),
            )

        steps = 0

        def backtrack(index: int, picks: List[str]) -> Optional[List[str]]:
            nonlocal steps
            if index == len(candidate_lists):
                return picks
            for candidate in candidate_lists[index]:
                steps += 1
                if steps > self.max_steps:
                    raise UnsatisfiableError(
                        "solver budget exhausted; constraints too tangled"
                    )
                trial = picks + [candidate]
                closure = self.repository.closure(trial)
                if self._slot_clash(closure) is None:
                    result = backtrack(index + 1, trial)
                    if result is not None:
                        return result
            return None

        picks = backtrack(0, [])
        if picks is None:
            # Produce a concrete explanation from the newest-first picks.
            greedy = [candidates[0] for candidates in candidate_lists]
            clash = self._slot_clash(self.repository.closure(greedy))
            detail = (
                f"; e.g. slot {clash[0]!r} needs both {clash[1]!r} and "
                f"{clash[2]!r}" if clash else ""
            )
            raise UnsatisfiableError(
                "requirements cannot be satisfied together" + detail
            )
        return Resolution(
            assignments={str(req): pid for req, pid in zip(parsed, picks)},
            closure=self.repository.closure(picks),
        )
