"""Infer specifications from Python import statements.

Parses source with :mod:`ast` (never executes it) and collects top-level
imported module names: ``import numpy.linalg`` and
``from scipy.sparse import linalg`` contribute ``numpy`` and ``scipy``.
Relative imports (``from . import x``) are internal to the job's own code
and are ignored, as are modules from the standard library if a stdlib
filter is enabled (default: on, using :data:`sys.stdlib_module_names`).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Set, Union

from repro.specs.resolver import PackageResolver, SpecReport

__all__ = ["imported_modules", "spec_from_python_source", "spec_from_python_files"]

_STDLIB = frozenset(getattr(sys, "stdlib_module_names", ()))


def imported_modules(source: str, filename: str = "<string>") -> Set[str]:
    """Top-level module names imported by a Python source string.

    Raises :class:`SyntaxError` on unparseable source — a job script that
    does not parse cannot be analysed, and silently returning an empty
    spec would under-provision the container.
    """
    tree = ast.parse(source, filename=filename)
    modules: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules.add(alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: the job's own code
                continue
            if node.module:
                modules.add(node.module.split(".")[0])
    return modules


def spec_from_python_source(
    source: str,
    resolver: PackageResolver,
    filename: str = "<string>",
    skip_stdlib: bool = True,
) -> SpecReport:
    """Scan one source string and resolve its imports to a spec."""
    modules = imported_modules(source, filename)
    if skip_stdlib:
        modules = {m for m in modules if m not in _STDLIB}
    return resolver.resolve(sorted(modules))


def spec_from_python_files(
    paths: Iterable[Union[str, Path]],
    resolver: PackageResolver,
    skip_stdlib: bool = True,
) -> SpecReport:
    """Scan several files and merge their requirements into one spec."""
    modules: Set[str] = set()
    for path in paths:
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        modules |= imported_modules(source, filename=str(path))
    if skip_stdlib:
        modules = {m for m in modules if m not in _STDLIB}
    return resolver.resolve(sorted(modules))
