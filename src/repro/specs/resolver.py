"""Resolve discovered requirement names against a repository.

Scanners produce *short names* (``numpy``, ``ROOT``) or *name/version*
pairs (``ROOT/6.20.04``); the resolver maps them to concrete package ids:

- exact package-id matches pass through;
- name/version pairs match any variant of that name and version;
- bare names resolve to the lexicographically greatest version (a stable
  stand-in for "latest") unless an alias overrides the name first.

Unresolvable names are reported, not dropped silently — a job whose
requirements cannot be satisfied should fail at submission, not at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.spec import ImageSpec
from repro.packages.package import split_package_id
from repro.packages.repository import Repository

__all__ = ["PackageResolver", "SpecReport"]


@dataclass(frozen=True)
class SpecReport:
    """Result of turning scanned names into a specification."""

    spec: ImageSpec
    resolved: Dict[str, str]   # requested name -> package id
    unresolved: Tuple[str, ...]

    @property
    def complete(self) -> bool:
        return not self.unresolved


class PackageResolver:
    """Maps requirement names to package ids within one repository."""

    def __init__(
        self,
        repository: Repository,
        aliases: Optional[Mapping[str, str]] = None,
        case_insensitive: bool = True,
    ):
        self.repository = repository
        self.case_insensitive = case_insensitive
        self._aliases = dict(aliases or {})
        # name -> sorted list of (version, package_id)
        self._by_name: Dict[str, List[Tuple[str, str]]] = {}
        for pid in repository.ids:
            name, version, _variant = split_package_id(pid)
            key = name.lower() if case_insensitive else name
            self._by_name.setdefault(key, []).append((version, pid))
        for versions in self._by_name.values():
            versions.sort()

    def _norm(self, name: str) -> str:
        return name.lower() if self.case_insensitive else name

    def resolve_one(self, requirement: str) -> Optional[str]:
        """Resolve one requirement string to a package id, or None."""
        requirement = requirement.strip()
        if not requirement:
            return None
        alias = self._aliases.get(requirement) or self._aliases.get(
            self._norm(requirement)
        )
        if alias is not None:
            requirement = alias
        if requirement in self.repository:
            return requirement
        parts = requirement.split("/")
        name = self._norm(parts[0])
        candidates = self._by_name.get(name)
        if not candidates:
            return None
        if len(parts) >= 2:
            wanted = parts[1]
            matches = [pid for version, pid in candidates if version == wanted]
            if not matches:
                return None
            return sorted(matches)[0]
        # Bare name: newest version, first variant for determinism.
        newest = candidates[-1][0]
        matches = sorted(
            pid for version, pid in candidates if version == newest
        )
        return matches[0]

    def resolve(self, requirements: Iterable[str]) -> SpecReport:
        """Resolve many names into a :class:`SpecReport`."""
        resolved: Dict[str, str] = {}
        unresolved: List[str] = []
        for requirement in requirements:
            pid = self.resolve_one(requirement)
            if pid is None:
                unresolved.append(requirement)
            else:
                resolved[requirement] = pid
        return SpecReport(
            spec=ImageSpec(resolved.values()),
            resolved=resolved,
            unresolved=tuple(sorted(set(unresolved))),
        )
