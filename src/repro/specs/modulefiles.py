"""Infer specifications from ``module load`` directives.

HPC sites expose software through environment modules; job scripts carry
lines like::

    module load gcc/8.3.0
    module load ROOT/6.20.04 geant4
    ml python/3.9   # Lmod shorthand

The scanner extracts the loaded ``name[/version]`` tokens.  ``module
unload``/``purge`` remove prior loads (order matters within a script);
comments and unrelated shell text are ignored.
"""

from __future__ import annotations

import re
from typing import List

from repro.specs.resolver import PackageResolver, SpecReport

__all__ = ["loaded_modules", "spec_from_module_script"]

_LOAD_RE = re.compile(
    r"^\s*(?:module|ml)\s+(?:(load|add|unload|rm|del|purge)\s*)?(.*)$"
)
_COMMENT_RE = re.compile(r"(?<!\\)#.*$")


def loaded_modules(script: str) -> List[str]:
    """The modules still loaded at the end of a shell script, in load order."""
    loaded: List[str] = []
    for raw_line in script.splitlines():
        line = _COMMENT_RE.sub("", raw_line).strip()
        if not line:
            continue
        match = _LOAD_RE.match(line)
        if not match:
            continue
        verb, rest = match.group(1), match.group(2).strip()
        tokens = rest.split()
        if verb in ("unload", "rm", "del"):
            for token in tokens:
                # Unload matches by name, with or without version.
                name = token.split("/")[0]
                loaded = [
                    m for m in loaded
                    if m != token and m.split("/")[0] != name
                ]
            continue
        if verb == "purge":
            loaded.clear()
            continue
        # "module load x y" or the bare "ml x" shorthand.
        if verb in ("load", "add") or (verb is None and tokens):
            for token in tokens:
                if token.startswith("-"):  # option flags
                    continue
                if token not in loaded:
                    loaded.append(token)
    return loaded


def spec_from_module_script(
    script: str, resolver: PackageResolver
) -> SpecReport:
    """Scan a shell script's module directives and resolve them."""
    return resolver.resolve(loaded_modules(script))
