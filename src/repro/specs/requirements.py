"""Infer specifications from declarative requirement files.

The paper's key contrast (§II) is between *recipes* (ordered build steps)
and *declarative requirement files* like those Binder consumes — "a set of
dependencies has no order, and so one may combine or break apart sets
without starting over".  This module parses the two ubiquitous formats and
resolves them through the constraint solver, yielding conflict-checked
concrete specifications:

- pip-style ``requirements.txt``: one requirement per line
  (``root>=6.18,<6.21``), ``#`` comments, blank lines, and option lines
  (``-r``, ``--hash`` …) which are ignored with a warning list;
- conda-style ``environment.yml`` (the common subset, parsed without a
  YAML dependency): the ``dependencies:`` block of ``- name=version`` /
  ``- name`` items; nested ``- pip:`` sub-blocks are parsed as pip lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.spec import ImageSpec
from repro.packages.repository import Repository
from repro.packages.resolve import DependencySolver, Requirement, Resolution

__all__ = [
    "RequirementsReport",
    "parse_requirements_txt",
    "parse_environment_yml",
    "spec_from_requirements",
    "spec_from_conda_env",
]


@dataclass(frozen=True)
class RequirementsReport:
    """A solved requirements file."""

    spec: ImageSpec                 # the full concrete closure
    resolution: Resolution          # requirement -> package assignments
    ignored_lines: Tuple[str, ...]  # option lines we skipped


def parse_requirements_txt(text: str) -> Tuple[List[Requirement], List[str]]:
    """Parse pip-style lines into requirements; returns (reqs, ignored)."""
    requirements: List[Requirement] = []
    ignored: List[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("-"):
            ignored.append(line)
            continue
        requirements.append(Requirement.parse(line))
    return requirements, ignored


def parse_environment_yml(text: str) -> Tuple[List[Requirement], List[str]]:
    """Parse the common subset of conda ``environment.yml``.

    Only the ``dependencies:`` block is consulted; ``name:``/``channels:``
    and unrecognised keys are ignored.  Conda pins use a single ``=``
    (``python=3.9``), translated to an exact-version constraint.
    """
    requirements: List[Requirement] = []
    ignored: List[str] = []
    in_deps = False
    in_pip = False
    for raw in text.splitlines():
        stripped = raw.split("#", 1)[0].rstrip()
        if not stripped.strip():
            continue
        if not raw.startswith((" ", "\t", "-")):
            in_deps = stripped.strip().lower().startswith("dependencies:")
            in_pip = False
            continue
        if not in_deps:
            continue
        item = stripped.strip()
        if not item.startswith("-"):
            continue
        item = item[1:].strip()
        if item.lower().startswith("pip:"):
            in_pip = True
            continue
        if in_pip and raw.startswith((" " * 4, "\t\t", "  -")) and ":" not in item:
            # nested pip entries use pip syntax already
            requirements.append(Requirement.parse(item))
            continue
        if ":" in item:  # a mapping we don't model (e.g. "pip: [..]")
            ignored.append(item)
            continue
        # conda pin: name=version[=build]; build strings are dropped
        parts = item.split("=")
        parts = [p for p in parts if p]
        if len(parts) == 1:
            requirements.append(Requirement.parse(parts[0]))
        else:
            requirements.append(Requirement.parse(f"{parts[0]}=={parts[1]}"))
    return requirements, ignored


def _solve(
    requirements: List[Requirement],
    ignored: List[str],
    repository: Repository,
    enforce_slots: bool,
) -> RequirementsReport:
    solver = DependencySolver(repository)
    resolution = solver.solve(requirements, enforce_slots=enforce_slots)
    return RequirementsReport(
        spec=ImageSpec(resolution.closure),
        resolution=resolution,
        ignored_lines=tuple(ignored),
    )


def spec_from_requirements(
    text: str, repository: Repository, enforce_slots: bool = True
) -> RequirementsReport:
    """Solve a requirements.txt against a repository.

    Raises :class:`~repro.packages.resolve.UnsatisfiableError` when the
    constraints cannot be met — a submission-time failure, exactly where
    the paper wants conflicts surfaced.
    """
    requirements, ignored = parse_requirements_txt(text)
    return _solve(requirements, ignored, repository, enforce_slots)


def spec_from_conda_env(
    text: str, repository: Repository, enforce_slots: bool = True
) -> RequirementsReport:
    """Solve an environment.yml against a repository."""
    requirements, ignored = parse_environment_yml(text)
    return _solve(requirements, ignored, repository, enforce_slots)
