"""Specification-inference tools.

The paper (§V, "LANDLORD Deployment"): *"Simple specifications may be
hand-written; we also developed several simple analysis tools to
automatically generate specifications by scanning for Python import
statements, module load directives, or logs from previous jobs."*

This subpackage provides those scanners plus the resolver that maps the
short names they discover onto repository package ids:

- :mod:`repro.specs.resolver` — name → package-id resolution against a
  repository (latest version wins, aliases supported).
- :mod:`repro.specs.python_imports` — AST scan of Python sources.
- :mod:`repro.specs.modulefiles` — ``module load`` directive scan of shell
  scripts.
- :mod:`repro.specs.logparse` — CVMFS access-path extraction from job logs.
- :mod:`repro.specs.requirements` — requirements.txt / environment.yml
  solved through the version-constraint dependency solver.
"""

from repro.specs.logparse import spec_from_log
from repro.specs.modulefiles import spec_from_module_script
from repro.specs.python_imports import spec_from_python_source
from repro.specs.requirements import (
    RequirementsReport,
    spec_from_conda_env,
    spec_from_requirements,
)
from repro.specs.resolver import PackageResolver, SpecReport

__all__ = [
    "PackageResolver",
    "SpecReport",
    "spec_from_python_source",
    "spec_from_module_script",
    "spec_from_log",
    "RequirementsReport",
    "spec_from_requirements",
    "spec_from_conda_env",
]
