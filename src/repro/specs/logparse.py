"""Infer specifications from previous-job logs.

When no static spec exists, the paper falls back to runtime tracing:
observe which repository paths a job touched and require the packages that
own them.  Logs carry CVMFS access paths of the form::

    /cvmfs/<repo>/<name>/<version>[/<variant>]/...

(e.g. strace output, CVMFS client logs, or Shrinkwrap manifests).  The
parser extracts distinct ``name/version`` prefixes.  Tracing may span
multiple runs — the paper notes single runs can miss behaviours — so
:func:`spec_from_logs` merges several logs.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Set

from repro.specs.resolver import PackageResolver, SpecReport

__all__ = ["accessed_packages", "spec_from_log", "spec_from_logs"]

# /cvmfs/<repo>/<name>/<version>[/...]; name and version are single path
# segments; repo looks like "sft.cern.ch".
_ACCESS_RE = re.compile(
    r"/cvmfs/(?P<repo>[\w.\-]+)/(?P<name>[\w+.\-]+)/(?P<version>[\w+.\-]+)"
)


def accessed_packages(log: str, repo_filter: str = "") -> List[str]:
    """Distinct ``name/version`` pairs referenced in a log, in first-seen
    order.  ``repo_filter`` restricts to one CVMFS repository."""
    seen: Set[str] = set()
    out: List[str] = []
    for match in _ACCESS_RE.finditer(log):
        if repo_filter and match.group("repo") != repo_filter:
            continue
        requirement = f"{match.group('name')}/{match.group('version')}"
        if requirement not in seen:
            seen.add(requirement)
            out.append(requirement)
    return out


def spec_from_log(
    log: str, resolver: PackageResolver, repo_filter: str = ""
) -> SpecReport:
    """Resolve the packages a single job log shows being accessed."""
    return resolver.resolve(accessed_packages(log, repo_filter))


def spec_from_logs(
    logs: Iterable[str], resolver: PackageResolver, repo_filter: str = ""
) -> SpecReport:
    """Merge access evidence from several runs into one specification."""
    merged: List[str] = []
    seen: Set[str] = set()
    for log in logs:
        for requirement in accessed_packages(log, repo_filter):
            if requirement not in seen:
                seen.add(requirement)
                merged.append(requirement)
    return resolver.resolve(merged)
