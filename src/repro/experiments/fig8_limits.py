"""Figure 8: limits on efficiency and the operational zone.

Overlays cache efficiency and container efficiency against α and locates
the two practical limits the paper draws as vertical lines:

- on the left, a floor on cache efficiency — below it the cache is mostly
  duplicated content ("thrashing zone");
- on the right, a ceiling on merge-driven write amplification ("excessive
  image size" / at most a twofold I/O increase).

Between them lies the **operational zone**; the paper reports a wide one
(α ≈ 0.65–0.95) and recommends starting at a moderate α = 0.8.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.efficiency import find_operational_zone
from repro.analysis.report import sweep_table
from repro.analysis.sweep import alpha_sweep
from repro.experiments.common import Scale, base_config, experiment_main

__all__ = ["run", "report", "main"]

CACHE_EFFICIENCY_FLOOR = 0.3
WRITE_AMPLIFICATION_CEILING = 2.0
CONTAINER_EFFICIENCY_FLOOR = 0.2


def run(
    scale: Scale, seed: int = 2020, workers: Optional[int] = None
) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    sweep = alpha_sweep(
        base_config(scale, seed=seed),
        alphas=scale.alphas(),
        repetitions=scale.repetitions,
        label="fig8",
        workers=workers,
    )
    zone = find_operational_zone(
        sweep,
        cache_efficiency_floor=CACHE_EFFICIENCY_FLOOR,
        write_amplification_ceiling=WRITE_AMPLIFICATION_CEILING,
        container_efficiency_floor=CONTAINER_EFFICIENCY_FLOOR,
    )
    return {
        "sweep": sweep,
        "zone": {
            "lower": zone.lower,
            "upper": zone.upper,
            "valid": zone.valid,
            "width": zone.width,
            "floor": zone.cache_efficiency_floor,
            "ceiling": zone.write_amplification_ceiling,
        },
    }


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    sweep = results["sweep"]
    zone = results["zone"]
    lines = ["Figure 8 — limits on efficiency (operational zone)", ""]
    lines.append(
        sweep_table(
            sweep,
            ["cache_efficiency", "container_efficiency",
             "write_amplification"],
        )
    )
    lines.append("")
    from repro.util.asciiplot import Series, line_plot

    lines.append(
        line_plot(
            [
                Series("Cache", sweep.alphas,
                       100 * sweep.metric("cache_efficiency")),
                Series("Container", sweep.alphas,
                       100 * sweep.metric("container_efficiency")),
            ],
            title="Container versus Cache Efficiency",
            xlabel="alpha",
            ylabel="Percent Efficiency",
        )
    )
    lines.append("")
    if zone["valid"]:
        lines.append(
            f"Operational zone: alpha in [{zone['lower']:.2f}, "
            f"{zone['upper']:.2f}] (width {zone['width']:.2f}) — cache "
            f"efficiency >= {100 * zone['floor']:.0f}% and write "
            f"amplification <= {zone['ceiling']:.1f}x."
        )
        lines.append(
            "Below the zone: thrashing (duplicated single-use images). "
            "Above: excessive image size and merge I/O."
        )
    else:
        lines.append(
            "No operational zone found under the configured limits — "
            "the cache/overhead constraints exclude every alpha."
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
