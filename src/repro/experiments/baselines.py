"""Baseline comparison: quantifying §III's "imperfect solutions".

The paper argues three approaches to the container explosion problem fall
short — full-repo images, layering, and block deduplication — and its own
α extremes (no merging, single image).  This experiment runs one standard
workload through each strategy and puts numbers on the argument:

- **no-cache** — build every requested image from scratch (the I/O floor
  for requested bytes, no storage held);
- **exact LRU (α=0)** — cache with subset reuse only;
- **LANDLORD (α=0.8)** — the paper's recommended configuration;
- **single image (α=1)** — one all-purpose image absorbing everything;
- **full-repo image** — the entire repository as one pre-built image.

Plus the two §III yardsticks that are not request-serving strategies:
the Docker-style layer store's bytes for the same stream, and the
perfect-content-dedup lower bound (what block dedup could achieve at best,
which images-as-opaque-files cannot reach).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.containers.layers import LayerStore, LayeredImage
from repro.core.cache import LandlordCache
from repro.core.policies import FullRepoPolicy, NoCachePolicy, SingleImagePolicy
from repro.experiments.common import Scale, base_config, experiment_main
from repro.htc.simulator import make_workload
from repro.htc.workload import build_stream
from repro.packages.sft import build_experiment_repository
from repro.parallel import parallel_map, resolve_workers
from repro.util.rng import spawn
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = ["run", "report", "main"]

STRATEGIES = (
    "no-cache",
    "exact-lru (a=0)",
    "landlord (a=0.8)",
    "single-image (a=1)",
    "full-repo image",
)

# Per-worker-process state (repository, stream, capacity), installed by
# the initializer so each strategy task reuses one build of each.
_BASELINE_STATE: Dict[str, object] = {}


def _init_baseline_worker(scale: Scale, seed: int) -> None:
    """Build the shared repository and request stream once per worker."""
    repo = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    config = base_config(scale, seed=seed)
    workload = make_workload(config, repo)
    rng = spawn(seed, "baselines")
    stream = build_stream(
        workload, rng, n_unique=scale.n_unique, repeats=scale.repeats
    )
    _BASELINE_STATE["repo"] = repo
    _BASELINE_STATE["stream"] = stream
    _BASELINE_STATE["capacity"] = scale.capacity


def _install_baseline_state(repo, stream, capacity: int) -> None:
    """Install prebuilt shared state (the serial path's initializer)."""
    _BASELINE_STATE["repo"] = repo
    _BASELINE_STATE["stream"] = stream
    _BASELINE_STATE["capacity"] = capacity


def _drive(provider, stream) -> Dict[str, float]:
    for spec in stream:
        provider.request(spec)
    stats = provider.stats
    return {
        "hits": stats.hits,
        "merges": stats.merges,
        "inserts": stats.inserts,
        "bytes_written": stats.bytes_written,
        "storage_held": provider.cached_bytes,
        "hit_rate": stats.hit_rate,
        "container_efficiency": stats.container_efficiency,
        "cache_efficiency": provider.cache_efficiency,
    }


def _run_strategy(name: str) -> Dict[str, float]:
    """Drive one named strategy over the worker's installed stream."""
    repo = _BASELINE_STATE["repo"]
    stream = _BASELINE_STATE["stream"]
    capacity = _BASELINE_STATE["capacity"]
    if name == "no-cache":
        provider = NoCachePolicy(repo.size_of)
    elif name == "exact-lru (a=0)":
        provider = LandlordCache(capacity, 0.0, repo.size_of)
    elif name == "landlord (a=0.8)":
        provider = LandlordCache(capacity, 0.8, repo.size_of)
    elif name == "single-image (a=1)":
        provider = SingleImagePolicy(repo.size_of)
    elif name == "full-repo image":
        provider = FullRepoPolicy(repo.ids, repo.size_of)
    else:
        raise ValueError(f"unknown baseline strategy: {name!r}")
    stats = _drive(provider, stream)
    if name == "full-repo image":
        stats["bytes_written"] += provider.setup_bytes_written  # up-front build
    return stats


def run(
    scale: Scale, seed: int = 2020, workers: Optional[int] = None
) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    repo = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    config = base_config(scale, seed=seed)
    workload = make_workload(config, repo)
    rng = spawn(seed, "baselines")
    stream = build_stream(
        workload, rng, n_unique=scale.n_unique, repeats=scale.repeats
    )

    n_workers = resolve_workers(workers)
    if n_workers > 1:
        stats_list = parallel_map(
            _run_strategy,
            list(STRATEGIES),
            workers=n_workers,
            initializer=_init_baseline_worker,
            initargs=(scale, seed),
            labels=list(STRATEGIES),
        )
    else:
        _install_baseline_state(repo, stream, scale.capacity)
        stats_list = [_run_strategy(name) for name in STRATEGIES]
    strategies: Dict[str, Dict[str, float]] = dict(
        zip(STRATEGIES, stats_list)
    )

    # Yardstick 1: a Docker-style layer store refining one image per spec
    # family (each unique spec appended as a refinement of the previous).
    layer_store = LayerStore()
    image = LayeredImage()
    seen = set()
    for spec in stream:
        if spec in seen:
            continue
        seen.add(spec)
        visible = image.visible_packages
        image = image.extend(spec - visible, repo.size_of,
                             masks=visible - spec)
        layer_store.push("stream", image)
    layering_bytes = layer_store.stored_bytes

    # Yardstick 2: perfect content dedup across all distinct requested
    # images — what block dedup could at best retain.
    union = frozenset().union(*stream)
    dedup_floor = repo.bytes_of(union)

    return {
        "requests": len(stream),
        "requested_bytes": sum(repo.bytes_of(s) for s in stream),
        "strategies": strategies,
        "layering_stored_bytes": layering_bytes,
        "dedup_floor_bytes": dedup_floor,
        "repo_bytes": repo.total_size,
    }


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    lines = [
        f"Baseline strategies over {results['requests']} requests "
        f"(total requested {format_bytes(results['requested_bytes'])})",
        "",
    ]
    rows = []
    for name, s in results["strategies"].items():
        rows.append(
            [
                name,
                f"{100 * s['hit_rate']:.0f}%",
                int(s["merges"]),
                format_bytes(s["bytes_written"]),
                format_bytes(s["storage_held"]),
                f"{100 * s['container_efficiency']:.0f}%",
                f"{100 * s['cache_efficiency']:.0f}%",
            ]
        )
    lines.append(
        render_table(
            rows,
            header=["strategy", "hit rate", "merges", "written",
                    "storage held", "cont eff", "cache eff"],
        )
    )
    lines.append("")
    lines.append(
        f"Docker-style layer store for the same stream: "
        f"{format_bytes(results['layering_stored_bytes'])} stored "
        "(masked history included)."
    )
    lines.append(
        f"Perfect content-dedup floor (unreachable for opaque images): "
        f"{format_bytes(results['dedup_floor_bytes'])}; full repository: "
        f"{format_bytes(results['repo_bytes'])}."
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
