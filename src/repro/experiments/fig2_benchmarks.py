"""Figure 2: LHC benchmark applications under Shrinkwrap.

The paper's table reports, per application: average running time,
preparation time (download via Shrinkwrap + compress into an image file),
minimal (tailored) image size, and the experiment's full CVMFS repository
size.  We reproduce it against the modelled per-experiment repositories
(DESIGN.md §2 documents the substitution) and report paper-published vs
model-measured columns side by side.

The run also exercises the system the way the paper motivates: preparing
all seven apps through a single shared LANDLORD per experiment shows hits
and merges amortising preparation across apps of one experiment.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.landlord import Landlord
from repro.cvmfs.shrinkwrap import Shrinkwrap
from repro.experiments.common import Scale, experiment_main
from repro.htc.lhc import build_lhc_suite
from repro.util.tables import render_table
from repro.util.units import GB, format_bytes

__all__ = ["run", "report", "main"]


def run(scale: Scale, seed: int = 2020) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    n_packages = 3000 if scale.name == "paper" else 1200
    suite = build_lhc_suite(seed=seed, n_packages=n_packages)

    rows: List[Dict[str, object]] = []
    for app in suite.apps:
        rows.append(
            {
                "name": app.name,
                "experiment": app.experiment,
                "running_s": app.paper.running_seconds,
                "paper_prep_s": app.paper.prep_seconds,
                "model_prep_s": app.measured_prep_seconds,
                "paper_image": app.paper.minimal_image_bytes,
                "model_image": app.image_bytes,
                "full_repo": app.paper.full_repo_bytes,
                "model_repo": suite.repository_for(app).total_size,
                "selection": len(app.spec),
                "closure": len(app.closure),
            }
        )

    # Amortisation: run each experiment's apps through one shared LANDLORD.
    landlords = {
        name: Landlord(
            repo,
            capacity=100 * GB,
            alpha=0.8,
            shrinkwrap=Shrinkwrap(repo),
            expand_closure=False,
        )
        for name, repo in suite.repositories.items()
    }
    shared: List[Dict[str, object]] = []
    for app in suite.apps:
        prepared = landlords[app.experiment].prepare(app.closure)
        shared.append(
            {
                "name": app.name,
                "action": prepared.action.value,
                "prep_s": prepared.prep_seconds,
                "image": prepared.image.size,
            }
        )
    return {"apps": rows, "shared_landlord": shared}


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    lines = ["Figure 2 — LHC benchmark applications (paper vs model)", ""]
    lines.append(
        render_table(
            [
                [
                    r["name"],
                    f"{r['running_s']:.0f}s",
                    f"{r['paper_prep_s']:.0f}s",
                    f"{r['model_prep_s']:.0f}s",
                    format_bytes(r["paper_image"]),
                    format_bytes(r["model_image"]),
                    format_bytes(r["full_repo"]),
                    format_bytes(r["model_repo"]),
                ]
                for r in results["apps"]
            ],
            header=[
                "app", "run", "prep(paper)", "prep(model)",
                "img(paper)", "img(model)", "repo(paper)", "repo(model)",
            ],
        )
    )
    lines.append("")
    lines.append("Apps prepared through one shared LANDLORD per experiment:")
    lines.append(
        render_table(
            [
                [s["name"], s["action"], f"{s['prep_s']:.0f}s",
                 format_bytes(s["image"])]
                for s in results["shared_landlord"]
            ],
            header=["app", "action", "prep", "image used"],
        )
    )
    merged = sum(1 for s in results["shared_landlord"] if s["action"] == "merge")
    lines.append("")
    lines.append(
        f"{merged} of {len(results['shared_landlord'])} apps were served by "
        "merging into an existing experiment image rather than a fresh build."
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
