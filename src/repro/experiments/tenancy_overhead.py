"""Tenancy study: the storage and I/O price of isolation.

Not a paper figure — the paper defers multi-tenant privacy to future work
(§V) — but the natural follow-on experiment: run an identical multi-tenant
workload under each isolation mode of
:class:`~repro.core.tenancy.MultiTenantLandlord` and measure what privacy
costs in duplicated storage, lost reuse, and extra build I/O.

Expected shape: *shared* maximises reuse; *isolated* duplicates the common
transitive core in every tenant's cache (unique bytes scale with tenant
count); *public-core* recovers most of shared's storage behaviour while
keeping tenants' private software in separate custody domains.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.tenancy import ISOLATION_MODES, MultiTenantLandlord
from repro.experiments.common import Scale, experiment_main
from repro.htc.workload import UserDriftWorkload
from repro.packages.sft import build_experiment_repository
from repro.util.rng import spawn
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = ["run", "report", "main", "TENANTS"]

TENANTS = ("atlas", "cms", "alice", "lhcb")


def _tenant_stream(
    repository, scale: Scale, seed: int
) -> List[Tuple[str, frozenset]]:
    """Interleaved per-tenant drift streams (each tenant's jobs correlate)."""
    jobs_per_tenant = max(10, scale.n_unique // 3)
    streams = {}
    for tenant in TENANTS:
        workload = UserDriftWorkload(
            repository, max_selection=max(4, scale.max_selection // 3),
            drift=0.25, session_length=10,
        )
        rng = spawn(seed, "tenancy", tenant)
        streams[tenant] = [workload.sample(rng) for _ in range(jobs_per_tenant)]
    interleaved = []
    for i in range(jobs_per_tenant):
        for tenant in TENANTS:
            interleaved.append((tenant, streams[tenant][i]))
    return interleaved


def run(scale: Scale, seed: int = 2020) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    repository = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    stream = _tenant_stream(repository, scale, seed)
    modes: Dict[str, Dict[str, float]] = {}
    for mode in ISOLATION_MODES:
        landlord = MultiTenantLandlord(
            repository,
            capacity=scale.capacity,
            alpha=0.8,
            isolation=mode,
            tenants=list(TENANTS),
            is_public=lambda pid: pid.startswith(("core-", "fw-")),
            expand_closure=False,  # drift workload emits closed specs
        )
        for tenant, spec in stream:
            landlord.prepare(tenant, spec)
        stats = landlord.combined_stats()
        modes[mode] = {
            "hits": stats.hits,
            "merges": stats.merges,
            "inserts": stats.inserts,
            "bytes_written": stats.bytes_written,
            "cached_bytes": landlord.total_cached_bytes,
            "unique_bytes": landlord.total_unique_bytes,
        }
    return {
        "jobs": len(stream),
        "tenants": list(TENANTS),
        "modes": modes,
    }


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    modes = results["modes"]
    lines = [
        f"Isolation overhead — {results['jobs']} jobs from "
        f"{len(results['tenants'])} tenants",
        "",
    ]
    rows = []
    for mode, s in modes.items():
        rows.append(
            [
                mode,
                int(s["hits"]),
                int(s["merges"]),
                int(s["inserts"]),
                format_bytes(s["cached_bytes"]),
                format_bytes(s["unique_bytes"]),
                format_bytes(s["bytes_written"]),
            ]
        )
    lines.append(
        render_table(
            rows,
            header=["mode", "hits", "merges", "inserts", "stored",
                    "unique", "written"],
        )
    )
    shared = modes["shared"]["unique_bytes"]
    isolated = modes["isolated"]["unique_bytes"]
    if shared:
        lines.append("")
        lines.append(
            f"isolation holds {isolated / shared:.2f}x the distinct bytes "
            "shared custody needs — the storage price of privacy; "
            "public-core custody recovers most of the difference."
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
