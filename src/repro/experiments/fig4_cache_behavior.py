"""Figure 4: cache behaviour over a range of α values.

Three panels from one α sweep (0.4–1.0 in 0.05 steps, 20 repetitions,
median):

- **4a** total cache operations — inserts ≈ deletes dominate at low α
  (plain LRU behaviour); merges take over as α rises and collapse at α=1
  where a single image absorbs everything and hits jump;
- **4b** duplication of data in cache — unique data rises with merging
  while total data falls at high α, meeting at α=1;
- **4c** cumulative I/O overhead — actual writes track requested writes at
  low α and exceed them increasingly as merge rewrites dominate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.report import sweep_table
from repro.analysis.sweep import alpha_sweep
from repro.experiments.common import Scale, base_config, experiment_main

__all__ = ["run", "report", "main"]


def run(
    scale: Scale, seed: int = 2020, workers: Optional[int] = None
) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    sweep = alpha_sweep(
        base_config(scale, seed=seed),
        alphas=scale.alphas(),
        repetitions=scale.repetitions,
        label="fig4",
        workers=workers,
    )
    return {"sweep": sweep}


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    sweep = results["sweep"]
    lines = ["Figure 4 — cache behaviour over a range of alpha values", ""]
    lines.append("4a: total cache operations")
    lines.append(
        sweep_table(sweep, ["hits", "inserts", "merges", "deletes"])
    )
    from repro.util.asciiplot import Series, line_plot

    lines.append("")
    lines.append(
        line_plot(
            [
                Series(name, sweep.alphas, sweep.metric(name))
                for name in ("inserts", "deletes", "merges", "hits")
            ],
            title="Figure 4a: total cache operations vs alpha",
            xlabel="alpha",
        )
    )
    lines.append("")
    lines.append("4b: duplication of data in cache")
    lines.append(sweep_table(sweep, ["unique_bytes", "cached_bytes"]))
    lines.append("")
    lines.append(
        line_plot(
            [
                Series("Unique Data (GB)", sweep.alphas,
                       sweep.metric("unique_bytes") / 1e9),
                Series("Total Data (GB)", sweep.alphas,
                       sweep.metric("cached_bytes") / 1e9),
            ],
            title="Figure 4b: duplication of data in cache",
            xlabel="alpha",
        )
    )
    lines.append("")
    lines.append("4c: cumulative I/O overhead")
    lines.append(
        sweep_table(sweep, ["requested_bytes", "bytes_written",
                            "write_amplification"])
    )
    lines.append("")
    lines.append(
        line_plot(
            [
                Series("Actual Writes (TB)", sweep.alphas,
                       sweep.metric("bytes_written") / 1e12),
                Series("Requested Writes (TB)", sweep.alphas,
                       sweep.metric("requested_bytes") / 1e12),
            ],
            title="Figure 4c: cumulative I/O overhead",
            xlabel="alpha",
        )
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
