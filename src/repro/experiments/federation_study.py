"""Federation study: what cross-site image sharing saves.

§I motivates the explosion partly by replication — *"often, containers are
replicated across sites and to many individual nodes"*.  With
specification-level identity a shared registry turns that replication into
reuse (:mod:`repro.core.federation`).  This study runs the same
multi-site workload twice:

- **isolated sites** — every site builds all of its own images;
- **federated sites** — sites consult a shared registry before building
  and publish what they build.

Reported: per-configuration build I/O (Shrinkwrap writes), WAN transfer
(registry pulls), registry traffic, and action mix.  Expected shape: with
S sites sharing a workload mix, federation approaches a single site's
build I/O plus (S−1) pulls per image — pulls are cheaper than builds
whenever the registry image isn't grossly oversized.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.containers.registry import ImageRegistry
from repro.core.federation import FederatedLandlord
from repro.experiments.common import Scale, experiment_main
from repro.htc.workload import DependencyWorkload
from repro.packages.sft import build_experiment_repository
from repro.parallel import parallel_map, resolve_workers
from repro.util.rng import spawn
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = ["run", "report", "main", "N_SITES"]

N_SITES = 4
MODES = ("isolated", "federated")


def _site_streams(repository, scale: Scale, seed: int) -> List[List[frozenset]]:
    """Each site sees a draw from the same global workload population."""
    workload = DependencyWorkload(
        repository, max_selection=max(4, scale.max_selection // 2)
    )
    n_unique = max(10, scale.n_unique // 4)
    # A common pool of specs: sites sample (with repetition) from it, so
    # cross-site overlap exists without streams being identical.
    pool = workload.sample_specs(spawn(seed, "fed-pool"), n_unique)
    streams = []
    for site in range(N_SITES):
        rng = spawn(seed, "fed-site", site)
        picks = rng.integers(0, len(pool), size=n_unique * 2)
        streams.append([pool[int(i)] for i in picks])
    return streams


def _run_sites(repository, streams, scale: Scale, registry) -> Dict[str, float]:
    sites = [
        FederatedLandlord(
            repository,
            capacity=scale.capacity // N_SITES,
            alpha=0.8,
            registry=registry,
            expand_closure=False,
        )
        for _ in range(N_SITES)
    ]
    # Interleave site activity so the registry fills realistically.
    for i in range(len(streams[0])):
        for site, stream in zip(sites, streams):
            site.prepare(stream[i])
    totals = {
        "bytes_built": sum(s.cache.stats.bytes_written for s in sites),
        "bytes_pulled": sum(s.federation.pull_bytes for s in sites),
        "pulls": sum(s.federation.pulls for s in sites),
        "pushes": sum(s.federation.pushes for s in sites),
        "declined": sum(s.federation.declined_pulls for s in sites),
        "hits": sum(s.cache.stats.hits for s in sites),
        "merges": sum(s.cache.stats.merges for s in sites),
        "inserts": sum(s.cache.stats.inserts for s in sites),
        "adoptions": sum(s.cache.stats.adoptions for s in sites),
    }
    totals["registry_bytes"] = registry.stored_bytes if registry else 0
    return totals


# Per-worker-process state for the parallel path (repository, streams,
# scale), installed once by the initializer.
_FEDERATION_STATE: Dict[str, object] = {}


def _init_federation_worker(scale: Scale, seed: int) -> None:
    """Build the repository and site streams once per worker."""
    repository = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    _FEDERATION_STATE["repository"] = repository
    _FEDERATION_STATE["streams"] = _site_streams(repository, scale, seed)
    _FEDERATION_STATE["scale"] = scale


def _run_mode(mode: str) -> Dict[str, float]:
    """Run one configuration (isolated or federated) over all sites."""
    repository = _FEDERATION_STATE["repository"]
    streams = _FEDERATION_STATE["streams"]
    scale = _FEDERATION_STATE["scale"]
    registry = ImageRegistry() if mode == "federated" else None
    return _run_sites(repository, streams, scale, registry)


def run(
    scale: Scale, seed: int = 2020, workers: Optional[int] = None
) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    n_workers = resolve_workers(workers)
    if n_workers > 1:
        totals = parallel_map(
            _run_mode,
            list(MODES),
            workers=n_workers,
            initializer=_init_federation_worker,
            initargs=(scale, seed),
            labels=list(MODES),
        )
    else:
        _init_federation_worker(scale, seed)
        totals = [_run_mode(mode) for mode in MODES]
    # Each of the N_SITES streams holds 2x the per-site unique spec count
    # (see _site_streams); computed here so the parent need not build them.
    jobs = N_SITES * 2 * max(10, scale.n_unique // 4)
    return {
        "sites": N_SITES,
        "jobs": jobs,
        "isolated": totals[0],
        "federated": totals[1],
    }


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    iso, fed = results["isolated"], results["federated"]
    lines = [
        f"Federation study — {results['sites']} sites, "
        f"{results['jobs']} jobs",
        "",
    ]
    rows = []
    for label, totals in (("isolated", iso), ("federated", fed)):
        rows.append(
            [
                label,
                format_bytes(totals["bytes_built"]),
                format_bytes(totals["bytes_pulled"]),
                int(totals["hits"]),
                int(totals["adoptions"]),
                int(totals["inserts"]),
                int(totals["merges"]),
                format_bytes(totals["registry_bytes"]),
            ]
        )
    lines.append(
        render_table(
            rows,
            header=["mode", "built", "pulled", "hits", "adoptions",
                    "inserts", "merges", "registry"],
        )
    )
    if iso["bytes_built"]:
        saved = 1.0 - fed["bytes_built"] / iso["bytes_built"]
        lines.append("")
        lines.append(
            f"federation cuts global build I/O by {100 * saved:.0f}% — "
            f"{fed['pulls']} registry pulls "
            f"({format_bytes(fed['bytes_pulled'])}) replace local builds; "
            f"{fed['declined']} pulls were declined as oversized."
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
