"""Figure 5: behaviour of a single simulation.

The paper runs one simulation at α = 0.75 with a 1.4 TB cache over 500
unique job specifications, each repeated five times, and plots the
cumulative operation counts plus cached data and bytes written against the
request sequence.  Expected shape: merges dominate the operations; total
bytes written closely tracks merges; cached data climbs until the capacity
limit, after which deletes begin and the cache hovers at its limit; hits
keep rising throughout despite deletions.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import (
    alert_timeline,
    alert_timeline_lines,
    timeline_plot,
)
from repro.experiments.common import Scale, base_config, experiment_main
from repro.htc.simulator import simulate
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = ["run", "report", "main"]


def run(scale: Scale, seed: int = 2020) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    config = base_config(scale, seed=seed, alpha=0.75, record_timeline=True)
    result = simulate(config)
    transitions = alert_timeline(result.timeline, capacity=config.capacity)
    return {
        "config": {
            "alpha": config.alpha,
            "capacity": config.capacity,
            "n_unique": config.n_unique,
            "repeats": config.repeats,
        },
        "timeline": result.timeline,
        "final": result.summary(),
        "alerts": [t.to_jsonable() for t in transitions],
    }


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    cfg = results["config"]
    timeline = results["timeline"]
    final = results["final"]
    lines = [
        "Figure 5 — behaviour of a single simulation "
        f"(alpha={cfg['alpha']}, cache={format_bytes(cfg['capacity'])}, "
        f"{cfg['n_unique']} unique x {cfg['repeats']})",
        "",
    ]
    lines.append(
        timeline_plot(
            timeline,
            ["hits", "inserts", "deletes", "merges"],
            title="cumulative cache operations",
        )
    )
    lines.append("")
    # The paper plots these on a second Y axis; ASCII charts get one each.
    lines.append(
        timeline_plot(
            {"Cached Data (GB)": timeline["cached_bytes"] / 1e9},
            ["Cached Data (GB)"],
            title=f"cache occupancy (capacity {format_bytes(cfg['capacity'])})",
        )
    )
    lines.append("")
    lines.append(
        timeline_plot(
            {"Bytes Written (TB)": timeline["bytes_written"] / 1e12},
            ["Bytes Written (TB)"],
            title="cumulative bytes written",
        )
    )
    lines.append("")
    # Operational narrative: when would the default alert rules have
    # spoken up during this run?  Typically the eviction-storm alert
    # fires right where the occupancy plot hits the capacity ceiling
    # and deletes begin — the paper's eviction onset, on an alert axis.
    from repro.obs.alerts import AlertTransition

    transitions = [
        AlertTransition.from_jsonable(t) for t in results.get("alerts", [])
    ]
    lines.extend(alert_timeline_lines(transitions))
    lines.append("")
    lines.append(
        render_table(
            [
                ["hits", int(final["hits"])],
                ["inserts", int(final["inserts"])],
                ["merges", int(final["merges"])],
                ["deletes", int(final["deletes"])],
                ["  by capacity", int(final.get("evictions_capacity", 0))],
                ["  by idling", int(final.get("evictions_idle", 0))],
                ["cached data", format_bytes(final["cached_bytes"])],
                ["bytes written", format_bytes(final["bytes_written"])],
                ["cache efficiency", f"{100 * final['cache_efficiency']:.1f}%"],
                ["container efficiency",
                 f"{100 * final['container_efficiency']:.1f}%"],
            ],
            header=["final state", "value"],
        )
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
