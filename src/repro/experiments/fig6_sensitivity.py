"""Figure 6: effects of simulation parameters on system efficiency.

Four panels from two sweeps:

- **6a/6b** container and cache efficiency for cache sizes of 1x/2x/5x/10x
  the repository.  Larger caches hold more near-duplicate images, so both
  efficiencies *fall* with cache size.
- **6c/6d** the same efficiencies for 100/500/1000 unique jobs (x5 repeats
  each).  500 and 1000 should be nearly indistinguishable (steady state by
  500); 100 never fills the cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import sweep_plot
from repro.analysis.sweep import SweepResult, alpha_sweep
from repro.experiments.common import Scale, base_config, experiment_main
from repro.packages.sft import build_experiment_repository
from repro.parallel import RepositorySpec, SimulationPool, resolve_workers
from repro.util.tables import render_table

__all__ = ["run", "report", "main", "CACHE_MULTIPLES", "JOB_COUNTS"]

CACHE_MULTIPLES = (1, 2, 5, 10)
JOB_COUNTS = (100, 500, 1000)


def run(
    scale: Scale, seed: int = 2020, workers: Optional[int] = None
) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    config = base_config(scale, seed=seed)
    repo = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    alphas = scale.alphas()

    # All seven sweeps share one repository, so one worker pool (with the
    # repository built once per worker) serves them all.
    n_workers = resolve_workers(workers)
    pool = None
    if n_workers > 1:
        spec = RepositorySpec(
            "sft", seed, scale.n_packages, scale.repo_total_size
        )
        pool = SimulationPool(spec, n_workers)
    try:
        by_cache: List[SweepResult] = []
        for multiple in CACHE_MULTIPLES:
            by_cache.append(
                alpha_sweep(
                    config.with_(capacity=multiple * scale.repo_total_size),
                    alphas=alphas,
                    repetitions=scale.repetitions,
                    repository=repo,
                    label=f"{multiple}x Repo Size",
                    pool=pool,
                )
            )

        job_counts = (
            JOB_COUNTS
            if scale.name == "paper"
            else tuple(max(20, scale.n_unique * c // 500) for c in JOB_COUNTS)
        )
        by_jobs: List[SweepResult] = []
        for n_unique in job_counts:
            by_jobs.append(
                alpha_sweep(
                    config.with_(n_unique=n_unique),
                    alphas=alphas,
                    repetitions=scale.repetitions,
                    repository=repo,
                    label=f"{n_unique} jobs",
                    pool=pool,
                )
            )
    finally:
        if pool is not None:
            pool.close()
    return {
        "by_cache": by_cache,
        "by_jobs": by_jobs,
        "job_counts": job_counts,
    }


def _panel_table(sweeps: List[SweepResult], metric: str) -> str:
    header = ["alpha"] + [s.label for s in sweeps]
    rows = []
    for i, alpha in enumerate(sweeps[0].alphas):
        rows.append(
            [f"{alpha:.2f}"]
            + [f"{100 * s.metric(metric)[i]:.1f}%" for s in sweeps]
        )
    return render_table(rows, header=header)


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    by_cache = results["by_cache"]
    by_jobs = results["by_jobs"]
    lines = ["Figure 6 — effects of simulation parameters on efficiency", ""]
    panels = [
        ("6a: container efficiency vs cache size", by_cache,
         "container_efficiency"),
        ("6b: cache efficiency vs cache size", by_cache, "cache_efficiency"),
        ("6c: container efficiency vs unique job count", by_jobs,
         "container_efficiency"),
        ("6d: cache efficiency vs unique job count", by_jobs,
         "cache_efficiency"),
    ]
    for title, sweeps, metric in panels:
        lines.append(title)
        lines.append(_panel_table(sweeps, metric))
        lines.append("")
        lines.append(
            sweep_plot(sweeps, metric, title=title, scale=100.0,
                       ylabel="Percent Efficiency")
        )
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
