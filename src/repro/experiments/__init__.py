"""One module per paper table/figure, plus ablations.

Every experiment module exposes:

- ``run(scale, seed=...) -> dict`` — compute the figure's data;
- ``report(results) -> str`` — render it as paper-style tables/ASCII plots;
- ``main(argv)`` — CLI entry (also reachable via ``python -m repro <fig>``).

Scales: ``quick`` (default; laptop-seconds) and ``paper`` (the paper's
parameters; laptop-minutes).  Set ``REPRO_FULL=1`` or pass ``--scale paper``
to run at paper scale.  See DESIGN.md §4 for the experiment index.
"""

from repro.experiments.common import PAPER, QUICK, TINY, Scale, get_scale

__all__ = ["Scale", "TINY", "QUICK", "PAPER", "get_scale"]

EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "ablations",
    "baselines",
    "tenancy",
    "federation",
    "adaptive",
)
