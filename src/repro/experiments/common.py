"""Shared experiment scaffolding: scales, argument parsing, result output.

The paper's simulations run over the full 9,660-package repository with 20
repetitions per point; that is the ``paper`` scale and takes minutes.  The
``quick`` scale shrinks the repository and repetition counts proportionally
so every experiment finishes in seconds while preserving the shapes (cache
capacity stays at 2× the repository, selection sizes scale with the
repository, and so on).
"""

from __future__ import annotations

import argparse
import inspect
import os
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.htc.simulator import SimulationConfig
from repro.parallel import resolve_workers
from repro.util.units import GB

__all__ = [
    "Scale",
    "TINY",
    "QUICK",
    "PAPER",
    "get_scale",
    "base_config",
    "experiment_main",
]


@dataclass(frozen=True)
class Scale:
    """A coherent set of experiment sizes."""

    name: str
    n_packages: int
    repo_total_size: int
    capacity: int            # the default cache (2× repo, Figure 5's 1.4 TB)
    n_unique: int
    repeats: int
    repetitions: int         # simulations per sweep point
    alpha_step: float
    max_selection: int
    fig3_max_selection: int
    fig3_trials: int

    def with_(self, **changes: object) -> "Scale":
        """A modified copy of this scale."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def alphas(self, lo: float = 0.4, hi: float = 1.0) -> np.ndarray:
        """The α grid for this scale (inclusive endpoints)."""
        count = int(round((hi - lo) / self.alpha_step)) + 1
        return np.round(np.linspace(lo, hi, count), 6)


# For unit tests and pytest-benchmark runs: small enough that a full
# experiment is sub-second while the qualitative shapes survive.
TINY = Scale(
    name="tiny",
    n_packages=600,
    repo_total_size=45 * GB,
    capacity=90 * GB,
    n_unique=60,
    repeats=4,
    repetitions=3,
    alpha_step=0.15,
    max_selection=15,
    fig3_max_selection=150,
    fig3_trials=10,
)

QUICK = Scale(
    name="quick",
    n_packages=2000,
    repo_total_size=150 * GB,
    capacity=300 * GB,
    n_unique=150,
    repeats=5,
    repetitions=5,
    alpha_step=0.1,
    max_selection=40,
    fig3_max_selection=400,
    fig3_trials=25,
)

PAPER = Scale(
    name="paper",
    n_packages=9660,
    repo_total_size=700 * GB,
    capacity=1400 * GB,
    n_unique=500,
    repeats=5,
    repetitions=20,
    alpha_step=0.05,
    max_selection=100,
    fig3_max_selection=1000,
    fig3_trials=100,
)


def get_scale(name: Optional[str] = None) -> Scale:
    """Scale by name; honours ``REPRO_FULL=1`` when no name is given."""
    if name is None:
        name = "paper" if os.environ.get("REPRO_FULL") == "1" else "quick"
    if name == "tiny":
        return TINY
    if name == "quick":
        return QUICK
    if name == "paper":
        return PAPER
    raise ValueError(
        f"unknown scale: {name!r} (want 'tiny', 'quick' or 'paper')"
    )


def base_config(scale: Scale, seed: int = 2020, **overrides: object) -> SimulationConfig:
    """The default simulation config for a scale."""
    config = SimulationConfig(
        capacity=scale.capacity,
        n_unique=scale.n_unique,
        repeats=scale.repeats,
        max_selection=scale.max_selection,
        n_packages=scale.n_packages,
        repo_total_size=scale.repo_total_size,
        seed=seed,
    )
    return config.with_(**overrides) if overrides else config


def experiment_main(
    description: str,
    run_fn,
    report_fn,
    argv: Optional[Sequence[str]] = None,
) -> int:
    """Standard CLI wrapper used by every experiment module.

    Sweep-shaped experiments (those whose ``run`` accepts ``workers``)
    receive the resolved ``--workers`` count — by default every CPU, so
    ``python -m repro fig4`` fans out; ``--workers 1`` forces serial and
    ``REPRO_WORKERS`` overrides the default.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        choices=["tiny", "quick", "paper"],
        default=None,
        help="experiment scale (default: quick, or paper if REPRO_FULL=1)",
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for simulation fan-out (default: all CPUs; "
        "REPRO_WORKERS overrides; 1 = serial)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also save results as JSON"
    )
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    extra = {}
    if "workers" in inspect.signature(run_fn).parameters:
        try:
            extra["workers"] = resolve_workers(
                args.workers, default=os.cpu_count() or 1
            )
        except ValueError as exc:
            parser.error(str(exc))
    results = run_fn(scale, seed=args.seed, **extra)
    print(report_fn(results))
    if args.json:
        from repro.analysis.report import save_results_json

        save_results_json(args.json, results)
        print(f"\nresults saved to {args.json}")
    return 0
