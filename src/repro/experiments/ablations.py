"""Ablations of LANDLORD's design choices (DESIGN.md §5).

Four studies, each holding the Figure 5 configuration fixed and varying
one mechanism:

- **candidate order** — Algorithm 1 notes the merge-candidate selection
  "can be sorted by d_j"; compare sorted-by-distance vs insertion order vs
  random choice.
- **eviction policy** — LRU vs FIFO vs largest-first.
- **hit selection** — when several cached images satisfy a request, use
  the smallest vs most-recently-used vs first-found.
- **MinHash prefilter** — exact Jaccard against every cached image vs
  LSH-prefiltered candidates verified exactly: quality deltas plus the
  candidate-examination counts the prefilter saves.
- **merge write mode** — the paper's full-image rewrite vs a hypothetical
  copy-on-write delta format, separating Figure 4c's policy cost (how often
  merges happen) from its mechanism cost (what one merge writes).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.analysis.sweep import run_repetitions
from repro.experiments.common import Scale, base_config, experiment_main
from repro.packages.sft import build_experiment_repository
from repro.parallel import RepositorySpec, SimulationPool, resolve_workers
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = ["run", "report", "main"]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _study(
    config, repository, repetitions: int,
    pool: Optional[SimulationPool] = None,
) -> Dict[str, float]:
    start = time.perf_counter()
    results = run_repetitions(
        config, repetitions, repository=repository, pool=pool
    )
    elapsed = time.perf_counter() - start
    summaries = [r.summary() for r in results]
    out = {
        key: _median([s[key] for s in summaries])
        for key in ("hits", "merges", "inserts", "deletes",
                    "cache_efficiency", "container_efficiency",
                    "bytes_written")
    }
    out["candidates_examined"] = _median(
        [r.stats.candidates_examined for r in results]
    )
    out["seconds"] = elapsed / repetitions
    return out


def run(
    scale: Scale, seed: int = 2020, workers: Optional[int] = None
) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    repo = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    config = base_config(scale, seed=seed, alpha=0.75)
    reps = max(3, scale.repetitions // 2)

    # Fourteen variants all simulate against the same repository; share
    # one worker pool across every study when parallelism is requested.
    n_workers = resolve_workers(workers)
    pool = None
    if n_workers > 1:
        spec = RepositorySpec(
            "sft", seed, scale.n_packages, scale.repo_total_size
        )
        pool = SimulationPool(spec, n_workers)
    try:
        studies: Dict[str, Dict[str, Dict[str, float]]] = {}
        studies["candidate_order"] = {
            order: _study(config.with_(candidate_order=order), repo, reps,
                          pool=pool)
            for order in ("distance", "insertion", "random")
        }
        studies["eviction"] = {
            policy: _study(config.with_(eviction=policy), repo, reps,
                           pool=pool)
            for policy in ("lru", "fifo", "size")
        }
        studies["hit_selection"] = {
            rule: _study(config.with_(hit_selection=rule), repo, reps,
                         pool=pool)
            for rule in ("smallest", "mru", "first")
        }
        studies["minhash"] = {
            ("lsh-prefilter" if flag else "exact"): _study(
                config.with_(use_minhash=flag), repo, reps, pool=pool
            )
            for flag in (False, True)
        }
        studies["merge_write_mode"] = {
            mode: _study(config.with_(merge_write_mode=mode), repo, reps,
                         pool=pool)
            for mode in ("full", "delta")
        }
    finally:
        if pool is not None:
            pool.close()
    return {"alpha": config.alpha, "studies": studies}


def _study_table(variants: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for name, metrics in variants.items():
        rows.append(
            [
                name,
                int(metrics["hits"]),
                int(metrics["merges"]),
                int(metrics["inserts"]),
                f"{100 * metrics['cache_efficiency']:.1f}%",
                f"{100 * metrics['container_efficiency']:.1f}%",
                format_bytes(metrics["bytes_written"]),
                int(metrics["candidates_examined"]),
                f"{metrics['seconds'] * 1e3:.0f}ms",
            ]
        )
    return render_table(
        rows,
        header=["variant", "hits", "merges", "inserts", "cache eff",
                "cont eff", "written", "jaccard evals", "time/run"],
    )


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    lines = [f"Ablations at alpha={results['alpha']}", ""]
    for study, variants in results["studies"].items():
        lines.append(f"== {study} ==")
        lines.append(_study_table(variants))
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
