"""Figure 1: refining via layers vs. composition.

The paper's figure is a schematic of three jobs served by layered images
versus composed (specification-level) images, making two points:

1. content masked by a later layer is still stored and transferred;
2. identical requirements reached along different histories are invisible
   to a layer store but obvious to a composition store.

``run`` reproduces the schematic with the literal three-job example and
then generalises it: a stream of evolving job requirements is served by
(a) a Docker-style :class:`~repro.containers.layers.LayerStore` that
refines images by appending layers, and (b) a LANDLORD cache that composes
specifications — comparing stored bytes and requirement-recognition.
"""

from __future__ import annotations

from typing import Dict

from repro.containers.layers import LayeredImage, LayerStore
from repro.core.cache import LandlordCache
from repro.experiments.common import Scale, base_config, experiment_main
from repro.htc.simulator import make_workload
from repro.packages.sft import build_experiment_repository
from repro.util.rng import spawn
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = ["run", "report", "main"]


def _schematic() -> Dict[str, object]:
    """The literal Figure 1 example: jobs {A,B}, {A,B,C}, {A,B}."""
    sizes = {"A": 10, "B": 20, "C": 30}
    size_of = sizes.__getitem__
    jobs = [{"A", "B"}, {"A", "B", "C"}, {"A", "B"}]

    # Layering: refine one image per job by appending layers.
    store = LayerStore()
    image = LayeredImage()
    image = image.extend({"A", "B"}, size_of)            # job 1
    store.push("v1", image)
    image = image.extend({"C"}, size_of)                 # job 2: add C
    store.push("v2", image)
    image = image.extend((), size_of, masks={"C"})       # job 3: mask C
    store.push("v3", image)
    layering = {
        "stored_bytes": store.stored_bytes,
        "images": store.image_count,
        "layers": store.distinct_layers,
        # v3's visible contents equal v1's, but they are distinct artifacts:
        "equivalence_detected": store.get("v1").head_id()
        == store.get("v3").head_id(),
    }

    # Composition: a Landlord cache recognises job 3 as a subset of job 2's
    # merged image (or an exact repeat of job 1's).
    cache = LandlordCache(capacity=1 << 40, alpha=0.8, package_size=size_of)
    actions = [cache.request(frozenset(job)).action.value for job in jobs]
    composition = {
        "stored_bytes": cache.cached_bytes,
        "images": len(cache),
        "actions": actions,
        "equivalence_detected": actions[2] == "hit",
    }
    return {"jobs": [sorted(j) for j in jobs], "layering": layering,
            "composition": composition}


def run(scale: Scale, seed: int = 2020) -> Dict[str, object]:
    """Schematic plus a randomized generalisation on the SFT repository."""
    repo = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    config = base_config(scale, seed=seed)
    workload = make_workload(config, repo)
    rng = spawn(seed, "fig1")

    n_users = 8
    steps_per_user = max(4, scale.n_unique // 20)
    layer_store = LayerStore()
    cache = LandlordCache(
        capacity=1 << 62, alpha=0.8, package_size=repo.size_of
    )
    recognised_by_layers = 0
    recognised_by_composition = 0
    total_jobs = 0

    for user in range(n_users):
        # Each user's requirements evolve: start from a spec, then drift by
        # adding/removing a few packages per step (new version, new tool).
        current = set(workload.sample(rng))
        image = LayeredImage()
        image = image.extend(current, repo.size_of)
        layer_store.push(f"u{user}", image)
        cache.request(frozenset(current))
        total_jobs += 1
        for _ in range(steps_per_user - 1):
            additions = set(workload.sample(rng))
            drop_count = min(len(current) // 4, 25)
            drops = set(
                list(current)[i]
                for i in rng.choice(len(current), size=drop_count, replace=False)
            ) if drop_count else set()
            current = (current - drops) | additions

            # Each requirement set runs twice (re-runs per dataset are the
            # norm in HTC) — the repeat is where reuse recognition matters.
            wanted = frozenset(current)
            for _repeat in range(2):
                total_jobs += 1
                visible_before = image.visible_packages
                if wanted <= visible_before:
                    recognised_by_layers += 1
                else:
                    image = image.extend(
                        wanted - visible_before, repo.size_of,
                        masks=visible_before - wanted,
                    )
                    layer_store.push(f"u{user}", image)
                if cache.request(wanted).action.value == "hit":
                    recognised_by_composition += 1

    return {
        "schematic": _schematic(),
        "generalised": {
            "jobs": total_jobs,
            "layering_stored_bytes": layer_store.stored_bytes,
            "layering_layers": layer_store.distinct_layers,
            "layering_hits": recognised_by_layers,
            "composition_stored_bytes": cache.cached_bytes,
            "composition_unique_bytes": cache.unique_bytes,
            "composition_images": len(cache),
            "composition_hits": cache.stats.hits,
            "composition_merges": cache.stats.merges,
        },
    }


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    schematic = results["schematic"]
    gen = results["generalised"]
    lines = ["Figure 1 — refining via layers vs. composition", ""]
    lay, comp = schematic["layering"], schematic["composition"]
    lines.append("Three-job schematic (jobs: {A,B}, {A,B,C}, {A,B}):")
    lines.append(
        render_table(
            [
                ["layering", lay["stored_bytes"], lay["images"],
                 "no" if not lay["equivalence_detected"] else "yes"],
                ["composition", comp["stored_bytes"], comp["images"],
                 "yes" if comp["equivalence_detected"] else "no"],
            ],
            header=["strategy", "stored bytes", "images", "jobs 1&3 shared?"],
        )
    )
    lines.append("")
    lines.append(f"Generalised drift workload ({gen['jobs']} jobs, 8 users):")
    lines.append(
        render_table(
            [
                ["layering", format_bytes(gen["layering_stored_bytes"]),
                 gen["layering_layers"], gen["layering_hits"]],
                ["composition", format_bytes(gen["composition_stored_bytes"]),
                 gen["composition_images"], gen["composition_hits"]],
            ],
            header=["strategy", "stored", "units", "reuse hits"],
        )
    )
    ratio = gen["layering_stored_bytes"] / max(1, gen["composition_stored_bytes"])
    lines.append("")
    lines.append(
        f"Layering stores {ratio:.2f}x the composed cache's bytes across "
        f"{gen['layering_layers']} layers vs {gen['composition_images']} "
        "composed images; masked history is never reclaimed, and layering "
        "can only reuse its own current head, while composition recognises "
        "any equivalent or subset requirements (the schematic's jobs 1&3)."
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
