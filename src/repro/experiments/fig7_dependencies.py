"""Figure 7: impact of dependency structure on duplication.

The control experiment: the dependency-scheme workload is compared against
images of identical *sizes* whose contents are uniformly random (no
dependency correlation).  Expected shape: random images are rarely similar
enough to merge until α is very lax, so their cache/container efficiency
curves stay flat over most of the range — specification-level merging only
pays off when contents follow hierarchical dependency structure.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.report import sweep_plot
from repro.analysis.sweep import alpha_sweep
from repro.experiments.common import Scale, base_config, experiment_main
from repro.packages.sft import build_experiment_repository
from repro.parallel import RepositorySpec, SimulationPool, resolve_workers
from repro.util.tables import render_table

__all__ = ["run", "report", "main"]


def run(
    scale: Scale, seed: int = 2020, workers: Optional[int] = None
) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    config = base_config(scale, seed=seed)
    repo = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    alphas = scale.alphas()
    # Both sweeps (deps vs random scheme) share the repository and a pool.
    n_workers = resolve_workers(workers)
    pool = None
    if n_workers > 1:
        spec = RepositorySpec(
            "sft", seed, scale.n_packages, scale.repo_total_size
        )
        pool = SimulationPool(spec, n_workers)
    try:
        deps = alpha_sweep(
            config.with_(scheme="deps"),
            alphas=alphas,
            repetitions=scale.repetitions,
            repository=repo,
            label="Deps.",
            pool=pool,
        )
        random = alpha_sweep(
            config.with_(scheme="random"),
            alphas=alphas,
            repetitions=scale.repetitions,
            repository=repo,
            label="Random",
            pool=pool,
        )
    finally:
        if pool is not None:
            pool.close()
    return {"deps": deps, "random": random}


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    deps, random = results["deps"], results["random"]
    lines = ["Figure 7 — impact of dependencies on duplication", ""]
    rows = []
    for i, alpha in enumerate(deps.alphas):
        rows.append(
            [
                f"{alpha:.2f}",
                f"{100 * deps.metric('cache_efficiency')[i]:.1f}%",
                f"{100 * random.metric('cache_efficiency')[i]:.1f}%",
                f"{100 * deps.metric('container_efficiency')[i]:.1f}%",
                f"{100 * random.metric('container_efficiency')[i]:.1f}%",
                int(deps.metric("merges")[i]),
                int(random.metric("merges")[i]),
            ]
        )
    lines.append(
        render_table(
            rows,
            header=["alpha", "cache eff (deps)", "cache eff (rnd)",
                    "cont eff (deps)", "cont eff (rnd)",
                    "merges (deps)", "merges (rnd)"],
        )
    )
    lines.append("")
    lines.append(
        sweep_plot([deps, random], "cache_efficiency",
                   title="cache efficiency vs alpha", scale=100.0,
                   ylabel="Percent")
    )
    lines.append("")
    lines.append(
        sweep_plot([deps, random], "container_efficiency",
                   title="container efficiency vs alpha", scale=100.0,
                   ylabel="Percent")
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
