"""Adaptive-α study: online tuning vs fixed settings under workload shift.

The paper recommends a fixed moderate α and notes finer tuning is possible
(§VI); :mod:`repro.core.adaptive` automates that tuning.  This study asks
when automation actually matters: a workload *shift* moves the operational
zone mid-stream (phase 1: small correlated specs; phase 2: much larger
independent specs), and three configurations ride through it:

- fixed α = 0.4 (the thrashing corner for phase 1),
- fixed α = 0.95 (merge-heavy; pathological for phase 2's huge specs),
- the controller, starting from 0.4.

Reported per configuration and phase: α at phase end, cache efficiency,
window write amplification, bytes written.  Expected shape: each fixed
setting is poor in one phase; the controller walks into the zone in both.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.adaptive import AlphaController
from repro.core.cache import LandlordCache
from repro.experiments.common import Scale, base_config, experiment_main
from repro.htc.simulator import make_workload
from repro.packages.sft import build_experiment_repository
from repro.parallel import parallel_map, resolve_workers
from repro.util.rng import spawn
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = ["run", "report", "main"]

CONFIG_LABELS = ("fixed a=0.40", "fixed a=0.95", "adaptive (start 0.40)")


def _jobs_per_phase(scale: Scale) -> int:
    return max(150, scale.n_unique)


def _phased_stream(repository, scale: Scale, seed: int) -> List[List[frozenset]]:
    """Two phases with different spec-size regimes."""
    config = base_config(scale, seed=seed)
    rng = spawn(seed, "adaptive-study")
    small = make_workload(
        config.with_(scheme="drift",
                     max_selection=max(3, scale.max_selection // 4)),
        repository,
    )
    big = make_workload(
        config.with_(scheme="deps", max_selection=scale.max_selection * 2),
        repository,
    )
    n = _jobs_per_phase(scale)
    return [
        [small.sample(rng) for _ in range(n)],
        [big.sample(rng) for _ in range(n)],
    ]


def _run_config(label, make_provider, phases) -> Dict[str, object]:
    provider = make_provider()
    out: Dict[str, object] = {"label": label, "phases": []}
    for phase in phases:
        written_before = provider.cache.stats.bytes_written if hasattr(
            provider, "cache"
        ) else provider.stats.bytes_written
        requested_before = provider.cache.stats.requested_bytes if hasattr(
            provider, "cache"
        ) else provider.stats.requested_bytes
        for spec in phase:
            provider.request(spec)
        cache = provider.cache if hasattr(provider, "cache") else provider
        written = cache.stats.bytes_written - written_before
        requested = cache.stats.requested_bytes - requested_before
        out["phases"].append(
            {
                "alpha_end": cache.alpha,
                "cache_efficiency": cache.cache_efficiency,
                "write_amplification": written / requested if requested else 0.0,
                "bytes_written": written,
            }
        )
    return out


# Per-worker-process state for the parallel path, installed once by the
# initializer: the repository, the phased stream, and the cache capacity.
_ADAPTIVE_STATE: Dict[str, object] = {}


def _init_adaptive_worker(scale: Scale, seed: int) -> None:
    """Build the repository and phased stream once per worker."""
    repository = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    _ADAPTIVE_STATE["repository"] = repository
    _ADAPTIVE_STATE["phases"] = _phased_stream(repository, scale, seed)
    _ADAPTIVE_STATE["capacity"] = scale.capacity


def _run_labelled_config(label: str) -> Dict[str, object]:
    """Run one named configuration against the worker's installed phases."""
    repository = _ADAPTIVE_STATE["repository"]
    phases = _ADAPTIVE_STATE["phases"]
    capacity = _ADAPTIVE_STATE["capacity"]
    if label == "fixed a=0.40":
        make = lambda: LandlordCache(capacity, 0.4, repository.size_of)  # noqa: E731
    elif label == "fixed a=0.95":
        make = lambda: LandlordCache(capacity, 0.95, repository.size_of)  # noqa: E731
    elif label == "adaptive (start 0.40)":
        def make():
            cache = LandlordCache(capacity, 0.4, repository.size_of)
            return AlphaController(cache, interval=25)
    else:
        raise ValueError(f"unknown configuration: {label!r}")
    return _run_config(label, make, phases)


def run(
    scale: Scale, seed: int = 2020, workers: Optional[int] = None
) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    n_workers = resolve_workers(workers)
    if n_workers > 1:
        configs = parallel_map(
            _run_labelled_config,
            list(CONFIG_LABELS),
            workers=n_workers,
            initializer=_init_adaptive_worker,
            initargs=(scale, seed),
            labels=list(CONFIG_LABELS),
        )
    else:
        _init_adaptive_worker(scale, seed)
        configs = [_run_labelled_config(label) for label in CONFIG_LABELS]
    return {"jobs_per_phase": _jobs_per_phase(scale), "configs": configs}


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    lines = [
        "Adaptive vs fixed alpha under a workload shift "
        f"({results['jobs_per_phase']} jobs per phase)",
        "",
    ]
    rows = []
    for config in results["configs"]:
        for i, phase in enumerate(config["phases"]):
            rows.append(
                [
                    config["label"] if i == 0 else "",
                    f"phase {i + 1}",
                    f"{phase['alpha_end']:.2f}",
                    f"{100 * phase['cache_efficiency']:.0f}%",
                    f"{phase['write_amplification']:.2f}x",
                    format_bytes(phase["bytes_written"]),
                ]
            )
    lines.append(
        render_table(
            rows,
            header=["configuration", "phase", "alpha@end", "cache eff",
                    "write amp", "written"],
        )
    )
    adaptive = results["configs"][-1]
    lines.append("")
    lines.append(
        "the controller ends phase 1 at alpha="
        f"{adaptive['phases'][0]['alpha_end']:.2f} and phase 2 at "
        f"{adaptive['phases'][1]['alpha_end']:.2f}, tracking the zone as "
        "the workload changes; each fixed setting is wrong in one phase."
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
