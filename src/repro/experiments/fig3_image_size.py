"""Figure 3: image size vs. selection size.

The paper's procedure (§VI, *Characterizing Package Dependencies*): for
each fixed specification size, select that many packages uniformly at
random from the SFT repository; record (a) the on-disk size of the bare
selection, (b) the package count of the dependency-closed image, and
(c) the on-disk size of that image.  Repeat 100 times per size and take
medians.

Expected shape: bare-selection size grows proportionally; closures amplify
small selections by ~5x in package count, with the amplification fading as
selections grow (the shared transitive core is only counted once) — the
curve bends toward the total repository size.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.common import Scale, experiment_main
from repro.packages.sft import build_experiment_repository
from repro.util.asciiplot import Series, line_plot
from repro.util.rng import spawn
from repro.util.tables import render_table
from repro.util.units import format_bytes

__all__ = ["run", "report", "main"]


def run(scale: Scale, seed: int = 2020) -> Dict[str, object]:
    """Compute this experiment's data at the given scale."""
    repo = build_experiment_repository(
        "sft", seed=seed, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    max_sel = min(scale.fig3_max_selection, len(repo))
    step = max(1, max_sel // 10)
    sizes = np.arange(step, max_sel + 1, step)
    rng = spawn(seed, "fig3")
    ids = repo.ids

    spec_bytes = np.zeros(sizes.size)
    image_count = np.zeros(sizes.size)
    image_bytes = np.zeros(sizes.size)
    for i, sel_size in enumerate(sizes):
        trial_spec, trial_count, trial_bytes = [], [], []
        for _ in range(scale.fig3_trials):
            picks = rng.choice(len(ids), size=int(sel_size), replace=False)
            selection = [ids[int(p)] for p in picks]
            closure = repo.closure(selection)
            trial_spec.append(repo.bytes_of(selection))
            trial_count.append(len(closure))
            trial_bytes.append(repo.bytes_of(closure))
        spec_bytes[i] = np.median(trial_spec)
        image_count[i] = np.median(trial_count)
        image_bytes[i] = np.median(trial_bytes)

    return {
        "selection_sizes": sizes,
        "spec_bytes": spec_bytes,
        "image_count": image_count,
        "image_bytes": image_bytes,
        "repo_packages": len(repo),
        "repo_bytes": repo.total_size,
        "amplification": image_count / sizes,
    }


def report(results: Dict[str, object]) -> str:
    """Render computed results as paper-style text output."""
    sizes = results["selection_sizes"]
    lines = ["Figure 3 — image size vs. selection size", ""]
    lines.append(
        render_table(
            [
                [
                    int(sizes[i]),
                    format_bytes(results["spec_bytes"][i]),
                    int(results["image_count"][i]),
                    format_bytes(results["image_bytes"][i]),
                    f"{results['amplification'][i]:.2f}x",
                ]
                for i in range(len(sizes))
            ],
            header=["selection", "spec size", "image pkgs", "image size", "amp"],
        )
    )
    lines.append("")
    lines.append(
        line_plot(
            [
                Series("Spec. Size (GB)", sizes, results["spec_bytes"] / 1e9),
                Series("Image Size (GB)", sizes, results["image_bytes"] / 1e9),
            ],
            title="on-disk size vs selection size",
            xlabel="Specification Size (Packages)",
        )
    )
    lines.append("")
    lines.append(
        line_plot(
            [Series("Image Count", sizes, results["image_count"])],
            title="image package count vs selection size",
            xlabel="Specification Size (Packages)",
        )
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (argparse wrapper around run/report)."""
    return experiment_main(__doc__.splitlines()[0], run, report, argv)


if __name__ == "__main__":
    raise SystemExit(main())
