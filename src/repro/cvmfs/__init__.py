"""CVMFS-like content-addressed repository substrate.

The paper's prototype targets Singularity images built from CVMFS (the
CernVM File System) via **Shrinkwrap**, a tool *"for efficiently building
container images from CVMFS"* (§VI, Figure 2).  This subpackage models the
parts of that stack the evaluation exercises:

- :mod:`repro.cvmfs.objects` — a content-addressed object store: files are
  blobs keyed by digest, so identical file content is stored once
  repository-wide (CVMFS's dedup property).
- :mod:`repro.cvmfs.catalog` — package → file-manifest catalogs mapping each
  package to the objects it comprises (CVMFS nested catalogs).
- :mod:`repro.cvmfs.shrinkwrap` — resolve a specification's dependency
  closure, fetch the objects, and account the bytes downloaded and written
  when materialising a container image.

Nothing touches the real filesystem: blobs carry sizes only.  The substrate
exists to give the experiments a faithful byte/time accounting of image
creation ("preparation time" in Figure 2) including the dedup CVMFS
provides between packages that share files.
"""

from repro.cvmfs.catalog import FileCatalog, FileEntry
from repro.cvmfs.nested import CatalogNode, NestedCatalogTree
from repro.cvmfs.objects import ObjectStore
from repro.cvmfs.shrinkwrap import BuildReport, Shrinkwrap

__all__ = [
    "ObjectStore",
    "FileCatalog",
    "FileEntry",
    "CatalogNode",
    "NestedCatalogTree",
    "Shrinkwrap",
    "BuildReport",
]
