"""Shrinkwrap: materialise a specification into a container image.

Figure 2's "Prep. Time" column measures *"the amount of time required to
create such an image by downloading the contents via Shrinkwrap and
compressing the resulting data into an image file"*.  This module reproduces
that pipeline against the simulated CVMFS substrate:

1. resolve the specification's dependency closure against the repository;
2. fetch the closure's file objects from the object store (local object
   cache hits cost nothing);
3. write the image file — every package's files in full, since container
   images carry complete copies.

Costs are returned as a :class:`BuildReport`; wall-clock estimates come from
a simple two-parameter bandwidth model (download and write streams overlap
poorly in practice, so the model just sums them plus a fixed setup cost).
The default bandwidths are calibrated in ``repro.htc.lhc`` so the seven
benchmark applications land near Figure 2's measured preparation times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, Iterable, Optional, Union

from repro.core.spec import ImageSpec
from repro.cvmfs.catalog import FileCatalog
from repro.packages.repository import Repository
from repro.util.units import MB

__all__ = ["BuildReport", "Shrinkwrap"]


@dataclass(frozen=True)
class BuildReport:
    """Outcome of one Shrinkwrap image build."""

    packages: FrozenSet[str]       # full closure materialised in the image
    image_bytes: int               # size of the written image file
    bytes_downloaded: int          # cold object fetches from CVMFS
    bytes_from_cache: int          # object bytes served by the local cache
    files: int                     # number of file entries materialised
    prep_seconds: float            # modelled preparation wall-clock

    @property
    def download_hit_rate(self) -> float:
        total = self.bytes_downloaded + self.bytes_from_cache
        return self.bytes_from_cache / total if total else 1.0


class Shrinkwrap:
    """Image builder over a repository + file catalog.

    Args:
        repository: resolves dependency closures and package sizes.
        catalog: package → file manifests backed by an object store; when
            omitted, builds are accounted at package granularity (each
            package is one opaque object) — sufficient for experiments that
            only need byte totals.
        nested: optional :class:`~repro.cvmfs.nested.NestedCatalogTree`;
            when given, each build also loads the nested catalogs covering
            its closure and the metadata bytes join the download bill
            (catalogs already loaded by this client cost nothing).
        download_bw: modelled CVMFS download bandwidth, bytes/second.
        write_bw: modelled image write (compress+write) bandwidth.
        setup_seconds: fixed per-build overhead (mount, namespace setup).
    """

    def __init__(
        self,
        repository: Repository,
        catalog: Optional[FileCatalog] = None,
        nested: Optional[object] = None,
        download_bw: float = 200 * MB,
        write_bw: float = 300 * MB,
        setup_seconds: float = 5.0,
    ):
        if download_bw <= 0 or write_bw <= 0:
            raise ValueError("bandwidths must be positive")
        self.repository = repository
        self.catalog = catalog
        self.nested = nested
        self.download_bw = download_bw
        self.write_bw = write_bw
        self.setup_seconds = setup_seconds

    def resolve(
        self, spec: Union[ImageSpec, AbstractSet[str], Iterable[str]]
    ) -> FrozenSet[str]:
        """Dependency closure of a specification."""
        packages = spec.packages if isinstance(spec, ImageSpec) else spec
        return self.repository.closure(packages)

    def prep_time(self, bytes_downloaded: int, image_bytes: int) -> float:
        """Wall-clock model for a build."""
        return (
            self.setup_seconds
            + bytes_downloaded / self.download_bw
            + image_bytes / self.write_bw
        )

    def build(
        self,
        spec: Union[ImageSpec, AbstractSet[str], Iterable[str]],
        resolve_closure: bool = True,
    ) -> BuildReport:
        """Build the image for ``spec`` and account every byte moved.

        ``resolve_closure=False`` treats the spec as already closed (the
        cache simulator works with closed specs and must not re-expand).
        """
        packages = self.resolve(spec) if resolve_closure else frozenset(
            spec.packages if isinstance(spec, ImageSpec) else spec
        )
        metadata_bytes = 0
        if self.nested is not None:
            for pid in packages:
                metadata_bytes += self.nested.lookup(pid)
        if self.catalog is None:
            image_bytes = self.repository.bytes_of(packages)
            downloaded = image_bytes
            from_cache = 0
            files = len(packages)
        else:
            digests = self.catalog.digests_of(packages)
            before = self.catalog.store.stats.bytes_served_from_cache
            downloaded = self.catalog.store.fetch(digests)
            from_cache = (
                self.catalog.store.stats.bytes_served_from_cache - before
            )
            image_bytes = self.catalog.installed_bytes(packages)
            files = sum(len(self.catalog.manifest(p)) for p in packages)
        downloaded += metadata_bytes
        return BuildReport(
            packages=packages,
            image_bytes=image_bytes,
            bytes_downloaded=downloaded,
            bytes_from_cache=from_cache,
            files=files,
            prep_seconds=self.prep_time(downloaded, image_bytes),
        )
