"""Nested catalogs: CVMFS metadata loading as a first-class cost.

CVMFS partitions its namespace into *nested catalogs* — subtree manifests
loaded on demand as clients descend into the repository.  The paper cites
metadata scale as a motivation for MinHash (§V: *"metadata listings alone
for full-repository CVMFS images consumed multiple gigabytes of
storage"*), and the Shrinkwrap preparation step must traverse exactly the
catalogs covering a specification's closure.

This module models that: packages hang off a prefix tree of catalogs; a
lookup loads every catalog on the path from the root (once — loaded
catalogs stay cached, as in the real client), and each catalog's metadata
size is proportional to the entries it holds.  ``metadata_cost_of`` then
answers: how many metadata bytes must a cold client download before it can
even *start* fetching content for a given spec?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.packages.package import split_package_id
from repro.packages.repository import Repository

__all__ = ["CatalogNode", "NestedCatalogTree"]

# Modelled metadata footprint per directory entry (dirent + hash + flags):
# CVMFS catalogs are SQLite files; ~200 bytes/entry matches their scale.
BYTES_PER_ENTRY = 200


@dataclass
class CatalogNode:
    """One nested catalog: a subtree manifest."""

    path: str                      # repository path prefix, "" for root
    packages: List[str] = field(default_factory=list)
    children: Dict[str, "CatalogNode"] = field(default_factory=dict)

    @property
    def entry_count(self) -> int:
        """Entries in *this* catalog: direct packages + child mountpoints."""
        return len(self.packages) + len(self.children)

    @property
    def metadata_bytes(self) -> int:
        return self.entry_count * BYTES_PER_ENTRY


class NestedCatalogTree:
    """A prefix tree of catalogs over a repository's packages.

    Layout: the root catalog holds one mountpoint per package *name
    prefix* (the first ``prefix_len`` characters of the program name,
    CVMFS-style sharding); each shard catalog holds one mountpoint per
    program, and each program catalog lists its versions/variants.  Three
    levels is what large production repositories (sft.cern.ch) use.
    """

    def __init__(self, repository: Repository, prefix_len: int = 2):
        if prefix_len < 1:
            raise ValueError("prefix_len must be positive")
        self.repository = repository
        self.prefix_len = prefix_len
        self.root = CatalogNode(path="")
        self._package_path: Dict[str, Tuple[str, ...]] = {}
        for pid in repository.ids:
            name, _version, _variant = split_package_id(pid)
            shard = name[: prefix_len].lower()
            shard_node = self.root.children.setdefault(
                shard, CatalogNode(path=f"/{shard}")
            )
            program_node = shard_node.children.setdefault(
                name, CatalogNode(path=f"/{shard}/{name}")
            )
            program_node.packages.append(pid)
            self._package_path[pid] = (shard, name)
        self._loaded: Set[str] = set()
        self.metadata_bytes_loaded = 0
        self.catalogs_loaded = 0

    # -- client-side loading ------------------------------------------------

    def _load(self, node: CatalogNode) -> int:
        if node.path in self._loaded:
            return 0
        self._loaded.add(node.path)
        self.catalogs_loaded += 1
        self.metadata_bytes_loaded += node.metadata_bytes
        return node.metadata_bytes

    def lookup(self, package_id: str) -> int:
        """Resolve one package, loading catalogs along the way.

        Returns the metadata bytes downloaded by *this* lookup (0 when all
        catalogs on the path were already cached).  Unknown packages raise
        :class:`KeyError` — after loading the catalogs that prove the
        absence, exactly like a real negative lookup.
        """
        self._load(self.root)
        path = self._package_path.get(package_id)
        if path is None:
            # A negative lookup still walks as deep as the prefixes exist.
            name = split_package_id(package_id)[0]
            shard_node = self.root.children.get(name[: self.prefix_len].lower())
            loaded = 0
            if shard_node is not None:
                loaded += self._load(shard_node)
                program = shard_node.children.get(name)
                if program is not None:
                    loaded += self._load(program)
            raise KeyError(f"unknown package: {package_id!r}")
        shard, name = path
        loaded = self._load(self.root.children[shard])
        loaded += self._load(self.root.children[shard].children[name])
        return loaded

    def metadata_cost_of(self, package_ids: Iterable[str]) -> int:
        """Cold-client metadata bytes needed to resolve a whole spec.

        Stateless with respect to this tree's cache: computes the distinct
        catalogs the spec touches and sums their sizes (root included).
        """
        catalogs: Set[str] = {""}
        nodes: Dict[str, CatalogNode] = {"": self.root}
        for pid in package_ids:
            path = self._package_path.get(pid)
            if path is None:
                raise KeyError(f"unknown package: {pid!r}")
            shard, name = path
            shard_node = self.root.children[shard]
            program_node = shard_node.children[name]
            nodes[shard_node.path] = shard_node
            nodes[program_node.path] = program_node
            catalogs.add(shard_node.path)
            catalogs.add(program_node.path)
        return sum(nodes[c].metadata_bytes for c in catalogs)

    def drop_cache(self) -> None:
        """Forget loaded catalogs (a fresh client)."""
        self._loaded.clear()

    # -- statistics -----------------------------------------------------------

    @property
    def catalog_count(self) -> int:
        count = 1
        for shard in self.root.children.values():
            count += 1 + len(shard.children)
        return count

    @property
    def total_metadata_bytes(self) -> int:
        total = self.root.metadata_bytes
        for shard in self.root.children.values():
            total += shard.metadata_bytes
            total += sum(p.metadata_bytes for p in shard.children.values())
        return total
