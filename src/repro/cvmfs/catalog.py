"""Package → file-manifest catalogs.

CVMFS publishes nested catalogs mapping paths to content digests.  For the
simulation we generate, per package, a manifest of file entries whose sizes
sum to the package's installed size.  A controllable fraction of each
package's bytes references *shared* objects (common headers, data files,
interpreter runtimes duplicated across packages), which is what makes
content-level dedup interesting as a comparison point against
specification-level merging (§III, "Imperfect Solution: Block
Deduplication").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cvmfs.objects import ObjectStore
from repro.packages.repository import Repository
from repro.util.rng import spawn

__all__ = ["FileEntry", "FileCatalog", "generate_catalog"]


@dataclass(frozen=True)
class FileEntry:
    """One file inside a package: repository path, content digest, size."""

    path: str
    digest: str
    size: int


class FileCatalog:
    """Maps package ids to their file manifests."""

    def __init__(self, store: ObjectStore):
        self.store = store
        self._manifests: Dict[str, Tuple[FileEntry, ...]] = {}

    def __contains__(self, package_id: str) -> bool:
        return package_id in self._manifests

    def __len__(self) -> int:
        return len(self._manifests)

    def add_package(self, package_id: str, entries: Iterable[FileEntry]) -> None:
        """Catalogue a package's file manifest (registers its objects)."""
        if package_id in self._manifests:
            raise ValueError(f"package already catalogued: {package_id!r}")
        entries = tuple(entries)
        for entry in entries:
            self.store.register(entry.digest, entry.size)
        self._manifests[package_id] = entries

    def manifest(self, package_id: str) -> Tuple[FileEntry, ...]:
        """The file entries of one package (KeyError if uncatalogued)."""
        try:
            return self._manifests[package_id]
        except KeyError:
            raise KeyError(f"package not catalogued: {package_id!r}") from None

    def digests_of(self, package_ids: Iterable[str]) -> Dict[str, int]:
        """Deduplicated digest → size map covering the given packages."""
        out: Dict[str, int] = {}
        for pid in package_ids:
            for entry in self.manifest(pid):
                out[entry.digest] = entry.size
        return out

    def installed_bytes(self, package_ids: Iterable[str]) -> int:
        """Bytes when every package's files are copied into an image
        (no cross-package sharing — container images carry full copies)."""
        return sum(
            entry.size
            for pid in set(package_ids)
            for entry in self.manifest(pid)
        )

    def deduplicated_bytes(self, package_ids: Iterable[str]) -> int:
        """Bytes under perfect content dedup across the given packages."""
        return sum(self.digests_of(package_ids).values())


def _digest(token: str) -> str:
    return hashlib.blake2b(token.encode("utf-8"), digest_size=16).hexdigest()


def generate_catalog(
    repository: Repository,
    seed: Optional[int] = 2020,
    mean_file_size: float = 2e6,
    shared_fraction: float = 0.15,
    shared_pool_size: int = 2000,
) -> FileCatalog:
    """Synthesise file manifests for every package in a repository.

    Each package's installed size is split into files of roughly
    ``mean_file_size``; about ``shared_fraction`` of its *bytes* reference
    digests drawn from a repository-wide shared pool (content duplicated
    across packages), the rest are unique to the package.

    The generation is deterministic in ``seed`` and cheap enough to run for
    the full 9,660-package SFT repository.
    """
    if not 0.0 <= shared_fraction < 1.0:
        raise ValueError("shared_fraction must be in [0, 1)")
    store = ObjectStore()
    catalog = FileCatalog(store)
    rng = spawn(seed, "catalog")
    # The shared pool: object sizes drawn once, reused across packages.
    pool_sizes = np.maximum(
        rng.lognormal(mean=np.log(mean_file_size), sigma=1.0, size=shared_pool_size),
        512,
    ).astype(np.int64)
    pool_digests = [_digest(f"shared-{i}") for i in range(shared_pool_size)]

    for pid in repository.ids:
        size = repository.size_of(pid)
        entries: List[FileEntry] = []
        shared_budget = int(size * shared_fraction)
        remaining = size
        file_no = 0
        # Shared content first.  A shared object is included whole or not at
        # all (its digest fixes its size), so draws that would overshoot the
        # remaining budget are retried a few times and then abandoned.
        misses = 0
        while shared_budget > 0 and remaining > 0 and misses < 8:
            k = int(rng.integers(0, shared_pool_size))
            obj_size = int(pool_sizes[k])
            if obj_size > shared_budget or obj_size > remaining:
                misses += 1
                continue
            entries.append(
                FileEntry(
                    path=f"{pid}/shared/f{file_no:04d}",
                    digest=pool_digests[k],
                    size=obj_size,
                )
            )
            shared_budget -= obj_size
            remaining -= obj_size
            file_no += 1
        # Unique content fills the remainder in mean_file_size chunks.
        while remaining > 0:
            chunk = int(min(remaining, max(512, rng.exponential(mean_file_size))))
            entries.append(
                FileEntry(
                    path=f"{pid}/data/f{file_no:04d}",
                    digest=_digest(f"{pid}-{file_no}"),
                    size=chunk,
                )
            )
            remaining -= chunk
            file_no += 1
        catalog.add_package(pid, entries)
    return catalog
