"""Content-addressed object store.

CVMFS stores file content as digest-addressed blobs: two packages shipping
an identical file share one object.  The simulation never materialises
content, so an "object" here is a digest plus a byte size; digests are
synthesised deterministically by the catalog generator, with shared digests
modelling shared content.

The store tracks fetch statistics so Shrinkwrap builds can report cache-hot
vs cache-cold download volumes (a head node keeps a local object cache;
paper §V supposes "some local storage is available ... for caching exported
repository contents").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

__all__ = ["ObjectStore", "FetchStats"]


@dataclass
class FetchStats:
    """Cumulative fetch accounting for an object store."""

    requests: int = 0
    objects_fetched: int = 0
    bytes_fetched: int = 0
    cache_hits: int = 0
    bytes_served_from_cache: int = 0


class ObjectStore:
    """Digest → size mapping with a local fetch cache.

    ``register`` is idempotent for matching sizes (content-addressing means
    a digest uniquely determines content and hence size); re-registering a
    digest with a different size is an integrity error.
    """

    def __init__(self):
        self._objects: Dict[str, int] = {}
        self._local: Set[str] = set()
        self.stats = FetchStats()

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, digest: str) -> bool:
        return digest in self._objects

    def register(self, digest: str, size: int) -> None:
        """Add an object to the remote repository."""
        if size < 0:
            raise ValueError(f"object {digest!r} has negative size")
        known = self._objects.get(digest)
        if known is not None and known != size:
            raise ValueError(
                f"digest collision for {digest!r}: {known} != {size}"
            )
        self._objects[digest] = size

    def size_of(self, digest: str) -> int:
        """Byte size of an object (KeyError for unknown digests)."""
        try:
            return self._objects[digest]
        except KeyError:
            raise KeyError(f"unknown object: {digest!r}") from None

    @property
    def total_bytes(self) -> int:
        """Total deduplicated repository content."""
        return sum(self._objects.values())

    @property
    def cached_objects(self) -> int:
        return len(self._local)

    @property
    def cached_bytes(self) -> int:
        return sum(self._objects[d] for d in self._local)

    def fetch(self, digests: Iterable[str]) -> int:
        """Fetch objects into the local cache; return bytes downloaded.

        Objects already local are served from cache at zero download cost.
        Duplicate digests within one call are fetched once.
        """
        downloaded = 0
        self.stats.requests += 1
        for digest in set(digests):
            size = self.size_of(digest)
            if digest in self._local:
                self.stats.cache_hits += 1
                self.stats.bytes_served_from_cache += size
                continue
            self._local.add(digest)
            self.stats.objects_fetched += 1
            self.stats.bytes_fetched += size
            downloaded += size
        return downloaded

    def evict_local(self, digests: Iterable[str]) -> None:
        """Drop objects from the local cache (they remain fetchable)."""
        for digest in digests:
            self._local.discard(digest)

    def drop_local_cache(self) -> None:
        """Empty the local cache entirely (cold-start experiments)."""
        self._local.clear()
